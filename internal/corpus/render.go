package corpus

import (
	"fmt"
	"math/rand"
	"strings"

	"wdcproducts/internal/langid"
	"wdcproducts/internal/schemaorg"
	"wdcproducts/internal/xrand"
)

// RenderConfig tunes the per-offer heterogeneity operators. The default
// probabilities are calibrated so the generated benchmark reproduces the
// attribute densities of Table 2 (title 100%, description ~75%, price ~93%,
// priceCurrency ~90%, brand ~35%) and a median title length of ~8 words.
type RenderConfig struct {
	PBrandInTitle   float64 // brand token appears in the title
	PBrandAbbrev    float64 // ... as an abbreviation, when available
	PModelInTitle   float64 // manufacturer part number appears in the title
	PUnitVariant    float64 // variant token is rewritten ("1TB" -> "1000GB")
	PFeature        float64 // each feature token is mentioned
	PMarketing      float64 // a marketing token is appended
	PSecondMarket   float64 // ... and a second one
	PTypo           float64 // one token receives a character transposition
	PNounFirst      float64 // head noun precedes the variant
	PDescription    float64 // description attribute present
	PSecondSentence float64 // description gets a second sentence
	PBrandAttr      float64 // brand attribute present
	PPrice          float64 // price attribute present
	PCurrency       float64 // priceCurrency attribute present
}

// DefaultRenderConfig returns the Table 2-calibrated defaults.
func DefaultRenderConfig() RenderConfig {
	return RenderConfig{
		PBrandInTitle:   0.86,
		PBrandAbbrev:    0.25,
		PModelInTitle:   0.45,
		PUnitVariant:    0.35,
		PFeature:        0.40,
		PMarketing:      0.40,
		PSecondMarket:   0.25,
		PTypo:           0.04,
		PNounFirst:      0.25,
		PDescription:    0.76,
		PSecondSentence: 0.75,
		PBrandAttr:      0.35,
		PPrice:          0.93,
		PCurrency:       0.90,
	}
}

var currencies = []string{"USD", "USD", "USD", "EUR", "EUR", "GBP"}

// renderOffer produces one vendor-specific English offer for a product.
func renderOffer(p *Product, spec *categorySpec, cfg RenderConfig, rng *rand.Rand) schemaorg.Offer {
	var parts []string
	brandForm := p.Brand
	if len(p.BrandAbbrevs) > 0 && xrand.Bool(rng, cfg.PBrandAbbrev) {
		brandForm = p.BrandAbbrevs[rng.Intn(len(p.BrandAbbrevs))]
	}
	if xrand.Bool(rng, cfg.PBrandInTitle) {
		parts = append(parts, brandForm)
	}
	parts = append(parts, p.Series)

	variant := p.Variant
	if xrand.Bool(rng, cfg.PUnitVariant) {
		variant = rewriteVariant(variant, rng)
	}
	noun := spec.nouns[rng.Intn(len(spec.nouns))]
	if xrand.Bool(rng, cfg.PNounFirst) {
		parts = append(parts, noun, variant)
	} else {
		parts = append(parts, variant, noun)
	}
	if xrand.Bool(rng, cfg.PModelInTitle) {
		parts = append(parts, p.ModelCode)
	}
	for _, f := range p.Features {
		if xrand.Bool(rng, cfg.PFeature) {
			parts = append(parts, f)
		}
	}
	if xrand.Bool(rng, cfg.PMarketing) {
		parts = append(parts, marketingTokens[rng.Intn(len(marketingTokens))])
		if xrand.Bool(rng, cfg.PSecondMarket) {
			parts = append(parts, marketingTokens[rng.Intn(len(marketingTokens))])
		}
	}
	title := strings.Join(parts, " ")
	if xrand.Bool(rng, cfg.PTypo) {
		title = injectTypo(title, rng)
	}

	o := schemaorg.Offer{Title: title}
	if xrand.Bool(rng, cfg.PDescription) {
		o.Description = renderDescription(p, spec, variant, cfg, rng)
	}
	if xrand.Bool(rng, cfg.PBrandAttr) {
		o.Brand = p.Brand
	}
	if xrand.Bool(rng, cfg.PPrice) {
		jitter := 1 + (rng.Float64()-0.5)*0.3
		o.Price = fmt.Sprintf("%.2f", p.BasePrice*jitter)
	}
	if xrand.Bool(rng, cfg.PCurrency) {
		o.PriceCurrency = currencies[rng.Intn(len(currencies))]
	}
	o.GTIN = p.GTIN
	o.MPN = p.ModelCode
	o.SKU = fmt.Sprintf("SKU-%d-%04d", p.ID, rng.Intn(10000))
	return o
}

// renderDescription fills 1-2 category templates with the product's slots.
func renderDescription(p *Product, spec *categorySpec, variant string, cfg RenderConfig, rng *rand.Rand) string {
	fill := func(tmpl string) string {
		feat := ""
		if len(p.Features) > 0 {
			feat = p.Features[rng.Intn(len(p.Features))]
		}
		r := strings.NewReplacer(
			"{brand}", p.Brand,
			"{series}", p.Series,
			"{variant}", variant,
			"{feature}", feat,
			"{noun}", spec.nouns[rng.Intn(len(spec.nouns))],
		)
		return r.Replace(tmpl)
	}
	idx := rng.Intn(len(spec.descTemplates))
	out := fill(spec.descTemplates[idx])
	if xrand.Bool(rng, cfg.PSecondSentence) && len(spec.descTemplates) > 1 {
		second := rng.Intn(len(spec.descTemplates))
		if second == idx {
			second = (second + 1) % len(spec.descTemplates)
		}
		out += " " + fill(spec.descTemplates[second])
	}
	return out
}

// renderForeignOffer produces a non-English offer (title and description in
// the given language), the contamination the §3.2 language filter removes.
func renderForeignOffer(p *Product, spec *categorySpec, lang string, cfg RenderConfig, rng *rand.Rand) schemaorg.Offer {
	nouns := spec.foreignNouns[lang]
	if len(nouns) == 0 {
		nouns = spec.nouns
	}
	parts := []string{p.Brand, p.Series, p.Variant, nouns[rng.Intn(len(nouns))]}
	if marks := foreignMarketing[lang]; len(marks) > 0 {
		parts = append(parts, marks[rng.Intn(len(marks))])
		if xrand.Bool(rng, 0.5) {
			parts = append(parts, marks[rng.Intn(len(marks))])
		}
	}
	o := schemaorg.Offer{Title: strings.Join(parts, " ")}
	seeds := langid.SeedSentences(lang)
	if len(seeds) > 0 {
		a := seeds[rng.Intn(len(seeds))]
		b := seeds[rng.Intn(len(seeds))]
		o.Description = a + " " + b
	}
	if xrand.Bool(rng, cfg.PPrice) {
		o.Price = fmt.Sprintf("%.2f", p.BasePrice)
		o.PriceCurrency = "EUR"
	}
	o.GTIN = p.GTIN
	o.MPN = p.ModelCode
	return o
}

// rewriteVariant applies the unit-heterogeneity operator: "2TB" becomes
// "2 TB" or "2000GB", "size 9" becomes "us 9" or "sz 9", etc.
func rewriteVariant(v string, rng *rand.Rand) string {
	lower := strings.ToLower(v)
	switch {
	case strings.HasSuffix(lower, "tb") && !strings.Contains(v, " "):
		num := v[:len(v)-2]
		if rng.Intn(2) == 0 {
			return num + " TB"
		}
		return num + "000GB"
	case strings.HasSuffix(lower, "gb") && !strings.Contains(v, " "):
		num := v[:len(v)-2]
		return num + " GB"
	case strings.HasPrefix(lower, "size "):
		num := v[5:]
		if rng.Intn(2) == 0 {
			return "us " + num
		}
		return "sz " + num
	case strings.HasSuffix(lower, " inch"):
		num := v[:len(v)-5]
		if rng.Intn(2) == 0 {
			return num + "in"
		}
		return num + "\""
	default:
		return v
	}
}

// injectTypo transposes two adjacent characters inside one alphabetic token.
func injectTypo(title string, rng *rand.Rand) string {
	words := strings.Fields(title)
	// Pick a word long enough to transpose.
	for attempts := 0; attempts < 5; attempts++ {
		i := rng.Intn(len(words))
		w := words[i]
		if len(w) >= 4 {
			pos := 1 + rng.Intn(len(w)-2)
			b := []byte(w)
			b[pos], b[pos+1] = b[pos+1], b[pos]
			words[i] = string(b)
			break
		}
	}
	return strings.Join(words, " ")
}

// shortenTitle truncates a title below the five-token cleansing threshold,
// producing the "sparsely described" offers §3.2 removes.
func shortenTitle(title string, rng *rand.Rand) string {
	words := strings.Fields(title)
	keep := 2 + rng.Intn(2) // 2-3 words
	if keep > len(words) {
		keep = len(words)
	}
	return strings.Join(words[:keep], " ")
}
