package corpus

// This file holds the data-driven catalog specification from which synthetic
// products are derived. The structure mirrors how real product assortments
// create entity-matching difficulty: brands publish *series* of products
// whose variants differ in a single attribute (capacity, size, color...),
// which is exactly the source of the "very similar but different products"
// that §3.4 needs for negative corner-cases.

// variantDim is one attribute dimension along which series siblings differ.
type variantDim struct {
	name   string
	values []string
}

// brandSpec is a brand name plus the abbreviated/alternative surface forms
// vendors use for it.
type brandSpec struct {
	name    string
	abbrevs []string
}

// categorySpec is the full generative spec of one product category.
type categorySpec struct {
	name string
	// nouns are head-noun phrases for titles, e.g. "internal hard drive".
	nouns  []string
	brands []brandSpec
	// seriesWords is the pool from which series names are drawn.
	seriesWords []string
	// dims: each series picks one dimension; its values enumerate siblings.
	dims []variantDim
	// features are optional spec tokens sprinkled into titles/descriptions.
	features []string
	// descTemplates with {brand} {series} {variant} {feature} {noun} slots.
	descTemplates []string
	// foreignNouns maps language code -> translated head nouns for
	// non-English offer rendering.
	foreignNouns map[string][]string
	priceBase    float64
	priceSpread  float64
}

var marketingTokens = []string{
	"new", "oem", "bulk", "retail", "original", "genuine", "sealed",
	"free shipping", "fast delivery", "best price", "renewed", "2020 model",
	"top rated", "in stock", "limited offer", "premium", "official",
}

var foreignMarketing = map[string][]string{
	"de": {"neu", "originalverpackt", "kostenloser versand", "sofort lieferbar", "angebot"},
	"fr": {"neuf", "livraison gratuite", "en stock", "promotion", "garantie"},
	"es": {"nuevo", "envío gratis", "en stock", "oferta", "garantía"},
	"it": {"nuovo", "spedizione gratuita", "disponibile", "offerta", "garanzia"},
}

var catalogSpecs = []categorySpec{
	{
		name:        "hard drives",
		nouns:       []string{"internal hard drive", "desktop hard drive", "hdd", "3.5 inch hard drive"},
		brands:      []brandSpec{{"Seagate", []string{"SGT"}}, {"Western Digital", []string{"WD", "WDC"}}, {"Toshiba", []string{"TSB"}}, {"Hitachi", []string{"HGST"}}, {"Fujitsu", nil}, {"Maxtor", nil}},
		seriesWords: []string{"BarraCuda", "FireCuda", "IronWolf", "SkyHawk", "Blue", "Black", "Red", "Purple", "Gold", "P300", "X300", "N300", "UltraStar", "DeskStar", "TravelStar", "Exos", "Caviar", "Scorpio"},
		dims: []variantDim{
			{"capacity", []string{"500GB", "1TB", "2TB", "3TB", "4TB", "6TB", "8TB", "10TB"}},
		},
		features: []string{"SATA", "6Gb/s", "7200RPM", "5400RPM", "64MB cache", "128MB cache", "256MB cache", "3.5in", "2.5in", "CMR", "SMR"},
		descTemplates: []string{
			"The {brand} {series} {variant} {noun} delivers dependable storage with {feature} performance for desktop builds and upgrades.",
			"Store everything on the {series} {variant} drive featuring {feature} and proven {brand} reliability backed by a multi year warranty.",
			"{brand} engineered the {series} line for fast sustained transfers thanks to {feature} and optimized caching across the {variant} tier.",
		},
		foreignNouns: map[string][]string{
			"de": {"interne festplatte", "festplatte für desktop"},
			"fr": {"disque dur interne", "disque dur de bureau"},
			"es": {"disco duro interno", "disco duro para ordenador"},
			"it": {"disco rigido interno", "disco rigido per desktop"},
		},
		priceBase: 55, priceSpread: 120,
	},
	{
		name:        "solid state drives",
		nouns:       []string{"ssd", "solid state drive", "internal ssd", "nvme ssd"},
		brands:      []brandSpec{{"Samsung", []string{"SMS"}}, {"Crucial", []string{"CRU"}}, {"Kingston", []string{"KST"}}, {"SanDisk", []string{"SNDK"}}, {"Intel", nil}, {"Corsair", nil}},
		seriesWords: []string{"EVO", "EVO Plus", "PRO", "QVO", "MX500", "BX500", "P5", "A400", "KC3000", "Ultra", "Extreme", "MP600", "660p", "970", "980", "870"},
		dims: []variantDim{
			{"capacity", []string{"250GB", "500GB", "1TB", "2TB", "4TB"}},
		},
		features: []string{"NVMe", "PCIe 4.0", "PCIe 3.0", "M.2 2280", "SATA III", "3D NAND", "TLC", "QLC", "DRAM cache"},
		descTemplates: []string{
			"Upgrade to the {brand} {series} {variant} {noun} with {feature} technology for instant boot times and snappy application loads.",
			"The {series} {variant} combines {feature} with {brand} firmware tuning to sustain heavy mixed workloads without thermal throttling.",
			"With {feature} and capacities up to the {variant} class the {brand} {series} accelerates any laptop or desktop build.",
		},
		foreignNouns: map[string][]string{
			"de": {"interne ssd festplatte", "ssd laufwerk"},
			"fr": {"disque ssd interne", "ssd nvme"},
			"es": {"unidad ssd interna", "disco ssd"},
			"it": {"unità ssd interna", "disco ssd"},
		},
		priceBase: 45, priceSpread: 180,
	},
	{
		name:        "graphics cards",
		nouns:       []string{"graphics card", "video card", "gpu", "gaming graphics card"},
		brands:      []brandSpec{{"ASUS", nil}, {"MSI", nil}, {"Gigabyte", []string{"GB"}}, {"EVGA", nil}, {"Zotac", nil}, {"Sapphire", nil}, {"PNY", nil}},
		seriesWords: []string{"GeForce RTX", "GeForce GTX", "Radeon RX", "ROG Strix", "TUF Gaming", "Gaming X", "Eagle", "Ventus", "AMP", "Nitro+", "Pulse", "FTW3", "XLR8"},
		dims: []variantDim{
			{"model", []string{"3060", "3060 Ti", "3070", "3070 Ti", "3080", "3090", "6600 XT", "6700 XT", "6800 XT"}},
		},
		features: []string{"8GB GDDR6", "12GB GDDR6", "10GB GDDR6X", "ray tracing", "triple fan", "dual fan", "RGB lighting", "HDMI 2.1", "factory overclocked"},
		descTemplates: []string{
			"The {brand} {series} {variant} {noun} pushes high refresh gaming with {feature} and an advanced cooling shroud.",
			"Built around the {variant} chip the {brand} {series} offers {feature} for smooth 1440p and 4K performance.",
			"Gamers choose the {series} {variant} for its {feature} and quiet thermal design tuned by {brand}.",
		},
		foreignNouns: map[string][]string{
			"de": {"grafikkarte", "gaming grafikkarte"},
			"fr": {"carte graphique", "carte graphique gaming"},
			"es": {"tarjeta gráfica", "tarjeta de video"},
			"it": {"scheda grafica", "scheda video"},
		},
		priceBase: 320, priceSpread: 900,
	},
	{
		name:        "processors",
		nouns:       []string{"processor", "cpu", "desktop processor"},
		brands:      []brandSpec{{"Intel", nil}, {"AMD", nil}},
		seriesWords: []string{"Core i3", "Core i5", "Core i7", "Core i9", "Ryzen 3", "Ryzen 5", "Ryzen 7", "Ryzen 9", "Threadripper", "Xeon E", "Athlon"},
		dims: []variantDim{
			{"model", []string{"10100", "10400F", "10600K", "10700K", "10900K", "3600", "3700X", "3900X", "5600X", "5800X", "5900X", "5950X"}},
		},
		features: []string{"6 cores", "8 cores", "12 cores", "16 threads", "24 threads", "unlocked", "4.6GHz boost", "4.9GHz boost", "65W TDP", "105W TDP", "AM4 socket", "LGA1200"},
		descTemplates: []string{
			"The {brand} {series} {variant} {noun} brings {feature} to mainstream desktops with excellent single core speed.",
			"Content creators rely on the {series} {variant} and its {feature} for rendering encoding and heavy multitasking.",
			"With {feature} the {brand} {series} {variant} balances gaming performance and productivity workloads.",
		},
		foreignNouns: map[string][]string{
			"de": {"prozessor", "desktop prozessor"},
			"fr": {"processeur", "processeur de bureau"},
			"es": {"procesador", "procesador de escritorio"},
			"it": {"processore", "processore desktop"},
		},
		priceBase: 140, priceSpread: 450,
	},
	{
		name:        "monitors",
		nouns:       []string{"monitor", "led monitor", "computer monitor", "gaming monitor"},
		brands:      []brandSpec{{"Dell", nil}, {"LG", nil}, {"Samsung", []string{"SMS"}}, {"BenQ", nil}, {"AOC", nil}, {"ViewSonic", []string{"VS"}}, {"Acer", nil}},
		seriesWords: []string{"UltraSharp", "UltraGear", "Odyssey", "Nitro", "Predator", "ProArt", "Zowie", "Agon", "VX", "PD", "SW", "P-Series", "S-Line"},
		dims: []variantDim{
			{"size", []string{"21.5 inch", "24 inch", "27 inch", "32 inch", "34 inch"}},
		},
		features: []string{"144Hz", "165Hz", "60Hz", "IPS panel", "VA panel", "1ms response", "QHD 2560x1440", "4K UHD", "FreeSync", "G-Sync compatible", "HDR400"},
		descTemplates: []string{
			"The {brand} {series} {variant} {noun} features {feature} for fluid motion and accurate color reproduction.",
			"Designed for long sessions the {series} {variant} pairs {feature} with an ergonomic height adjustable stand by {brand}.",
			"Creators and gamers alike praise the {variant} {series} for its {feature} and thin bezel design.",
		},
		foreignNouns: map[string][]string{
			"de": {"monitor", "led bildschirm"},
			"fr": {"écran pc", "moniteur led"},
			"es": {"monitor led", "pantalla para ordenador"},
			"it": {"monitor led", "schermo pc"},
		},
		priceBase: 130, priceSpread: 420,
	},
	{
		name:        "keyboards",
		nouns:       []string{"mechanical keyboard", "gaming keyboard", "wireless keyboard", "keyboard"},
		brands:      []brandSpec{{"Logitech", []string{"Logi"}}, {"Corsair", nil}, {"Razer", nil}, {"SteelSeries", nil}, {"HyperX", nil}, {"Keychron", nil}},
		seriesWords: []string{"MX Keys", "G Pro", "K70", "K95", "BlackWidow", "Huntsman", "Apex", "Alloy", "K2", "K8", "Q1", "G915", "Strafe"},
		dims: []variantDim{
			{"switch", []string{"red switches", "blue switches", "brown switches", "silent switches", "optical switches"}},
		},
		features: []string{"RGB backlight", "per-key lighting", "aluminum frame", "hot swappable", "wireless 2.4GHz", "bluetooth", "USB passthrough", "detachable cable", "tenkeyless"},
		descTemplates: []string{
			"Type faster on the {brand} {series} {noun} with {variant} and {feature} built for durability.",
			"The {series} with {variant} gives tactile satisfying keystrokes while {feature} keeps your setup tidy.",
			"Esports professionals trust the {brand} {series} for its {variant} and {feature}.",
		},
		foreignNouns: map[string][]string{
			"de": {"mechanische tastatur", "gaming tastatur"},
			"fr": {"clavier mécanique", "clavier gaming"},
			"es": {"teclado mecánico", "teclado gaming"},
			"it": {"tastiera meccanica", "tastiera da gioco"},
		},
		priceBase: 60, priceSpread: 140,
	},
	{
		name:        "headphones",
		nouns:       []string{"wireless headphones", "over-ear headphones", "noise cancelling headphones", "bluetooth headset"},
		brands:      []brandSpec{{"Sony", nil}, {"Bose", nil}, {"Sennheiser", []string{"Senn"}}, {"Audio-Technica", []string{"AT"}}, {"JBL", nil}, {"Beats", nil}},
		seriesWords: []string{"WH-1000X", "QuietComfort", "Momentum", "HD", "ATH-M", "Live", "Tune", "Studio", "Solo", "Elite", "Free", "CX"},
		dims: []variantDim{
			{"model", []string{"M3", "M4", "M5", "35 II", "45", "50X", "40X", "660S", "560S", "700BT"}},
		},
		features: []string{"active noise cancelling", "30 hour battery", "40 hour battery", "aptX HD", "LDAC", "multipoint pairing", "foldable design", "built-in microphone", "touch controls"},
		descTemplates: []string{
			"Escape the noise with the {brand} {series} {variant} {noun} offering {feature} and plush memory foam earcups.",
			"The {series} {variant} tunes rich balanced sound while {feature} keeps you listening all day.",
			"Frequent travelers love the {brand} {series} {variant} for its {feature} and compact carry case.",
		},
		foreignNouns: map[string][]string{
			"de": {"kabellose kopfhörer", "bluetooth kopfhörer"},
			"fr": {"casque sans fil", "casque bluetooth"},
			"es": {"auriculares inalámbricos", "auriculares bluetooth"},
			"it": {"cuffie senza fili", "cuffie bluetooth"},
		},
		priceBase: 90, priceSpread: 260,
	},
	{
		name:        "smartphones",
		nouns:       []string{"smartphone", "mobile phone", "unlocked smartphone", "cell phone"},
		brands:      []brandSpec{{"Samsung", []string{"SMS"}}, {"Apple", nil}, {"Google", nil}, {"OnePlus", []string{"1+"}}, {"Xiaomi", []string{"Mi"}}, {"Motorola", []string{"Moto"}}},
		seriesWords: []string{"Galaxy S", "Galaxy A", "Galaxy Note", "iPhone", "Pixel", "Nord", "Redmi Note", "Edge", "Mi", "Pro Max"},
		dims: []variantDim{
			{"storage", []string{"32GB", "64GB", "128GB", "256GB", "512GB", "1TB"}},
		},
		features: []string{"5G", "dual SIM", "AMOLED display", "120Hz display", "triple camera", "wireless charging", "IP68 water resistant", "fast charging", "face unlock"},
		descTemplates: []string{
			"The {brand} {series} {variant} {noun} captures stunning photos with its {feature} and all day battery life.",
			"Stay connected on the {series} {variant} featuring {feature} and a premium glass and metal build.",
			"With {feature} the {brand} {series} {variant} delivers flagship performance without compromise.",
		},
		foreignNouns: map[string][]string{
			"de": {"smartphone ohne vertrag", "handy"},
			"fr": {"smartphone débloqué", "téléphone portable"},
			"es": {"teléfono móvil libre", "smartphone libre"},
			"it": {"smartphone sbloccato", "telefono cellulare"},
		},
		priceBase: 280, priceSpread: 700,
	},
	{
		name:        "running shoes",
		nouns:       []string{"running shoes", "road running shoes", "trail running shoes", "trainers"},
		brands:      []brandSpec{{"Nike", nil}, {"Adidas", nil}, {"ASICS", nil}, {"Brooks", nil}, {"New Balance", []string{"NB"}}, {"Saucony", nil}, {"Hoka", nil}},
		seriesWords: []string{"Pegasus", "Vomero", "Ultraboost", "Gel-Kayano", "Gel-Nimbus", "Ghost", "Glycerin", "Fresh Foam", "1080", "Ride", "Clifton", "Bondi", "Endorphin"},
		dims: []variantDim{
			{"size", []string{"size 8", "size 9", "size 9.5", "size 10", "size 10.5", "size 11", "size 12"}},
		},
		features: []string{"breathable mesh upper", "carbon plate", "gel cushioning", "boost midsole", "rocker geometry", "wide fit", "reflective details", "10mm drop", "neutral support"},
		descTemplates: []string{
			"Log comfortable miles in the {brand} {series} {noun} with {feature} and a secure midfoot lockdown in {variant}.",
			"The {series} in {variant} pairs {feature} with a durable rubber outsole for daily training.",
			"Runners praise the {brand} {series} for its {feature} whether racing or recovering, available in {variant}.",
		},
		foreignNouns: map[string][]string{
			"de": {"laufschuhe", "herren laufschuhe"},
			"fr": {"chaussures de course", "chaussures running"},
			"es": {"zapatillas de correr", "zapatillas running"},
			"it": {"scarpe da corsa", "scarpe running"},
		},
		priceBase: 85, priceSpread: 90,
	},
	{
		name:        "watches",
		nouns:       []string{"smartwatch", "fitness watch", "gps watch", "sports watch"},
		brands:      []brandSpec{{"Garmin", nil}, {"Fitbit", nil}, {"Apple", nil}, {"Polar", nil}, {"Suunto", nil}, {"Amazfit", nil}},
		seriesWords: []string{"Forerunner", "Fenix", "Venu", "Versa", "Sense", "Watch Series", "Vantage", "Ignite", "GTR", "T-Rex", "Instinct", "Epix"},
		dims: []variantDim{
			{"model", []string{"45", "55", "245", "255", "745", "945", "6", "6 Pro", "7", "7S", "3", "4"}},
		},
		features: []string{"GPS tracking", "heart rate sensor", "sleep tracking", "7 day battery", "14 day battery", "AMOLED screen", "music storage", "pulse ox sensor", "5ATM water rating"},
		descTemplates: []string{
			"Track every run with the {brand} {series} {variant} {noun} featuring {feature} and customizable watch faces.",
			"The {series} {variant} monitors training load with {feature} so you recover smarter.",
			"Athletes choose the {brand} {series} {variant} for its {feature} and rugged lightweight build.",
		},
		foreignNouns: map[string][]string{
			"de": {"smartwatch", "gps sportuhr"},
			"fr": {"montre connectée", "montre gps"},
			"es": {"reloj inteligente", "reloj deportivo gps"},
			"it": {"orologio intelligente", "orologio gps"},
		},
		priceBase: 150, priceSpread: 380,
	},
	{
		name:        "printers",
		nouns:       []string{"wireless printer", "all-in-one printer", "laser printer", "inkjet printer"},
		brands:      []brandSpec{{"HP", nil}, {"Canon", nil}, {"Epson", nil}, {"Brother", nil}, {"Lexmark", nil}},
		seriesWords: []string{"LaserJet", "OfficeJet", "DeskJet", "PIXMA", "MAXIFY", "EcoTank", "WorkForce", "HL", "MFC", "Envy", "imageCLASS"},
		dims: []variantDim{
			{"model", []string{"2700", "3750", "4100", "M15w", "M110", "TR4720", "ET-2803", "L3250", "9015e", "TS6420"}},
		},
		features: []string{"duplex printing", "wifi direct", "mobile printing", "flatbed scanner", "automatic document feeder", "borderless photo", "20ppm", "monochrome", "refillable tanks"},
		descTemplates: []string{
			"Print from anywhere with the {brand} {series} {variant} {noun} supporting {feature} right out of the box.",
			"The {series} {variant} handles busy home offices thanks to {feature} and low cost per page.",
			"Setup takes minutes on the {brand} {series} {variant} and {feature} keeps paperwork moving.",
		},
		foreignNouns: map[string][]string{
			"de": {"multifunktionsdrucker", "wlan drucker"},
			"fr": {"imprimante multifonction", "imprimante wifi"},
			"es": {"impresora multifunción", "impresora wifi"},
			"it": {"stampante multifunzione", "stampante wifi"},
		},
		priceBase: 95, priceSpread: 210,
	},
	{
		name:        "routers",
		nouns:       []string{"wifi router", "wireless router", "mesh router", "gaming router"},
		brands:      []brandSpec{{"TP-Link", []string{"TPL"}}, {"Netgear", nil}, {"ASUS", nil}, {"Linksys", nil}, {"D-Link", nil}, {"Ubiquiti", []string{"UBNT"}}},
		seriesWords: []string{"Archer", "Nighthawk", "Orbi", "Deco", "RT-AX", "ROG Rapture", "Velop", "AmpliFi", "EAX", "XR"},
		dims: []variantDim{
			{"model", []string{"AX21", "AX55", "AX73", "C7", "C80", "RAX40", "RAX80", "86U", "88U", "X20", "X60"}},
		},
		features: []string{"WiFi 6", "dual band", "tri band", "OFDMA", "MU-MIMO", "gigabit ports", "2.5G WAN", "parental controls", "VPN server", "beamforming"},
		descTemplates: []string{
			"Blanket your home in fast wifi with the {brand} {series} {variant} {noun} powered by {feature}.",
			"The {series} {variant} eliminates dead zones using {feature} and easy app based setup.",
			"Streamers pick the {brand} {series} {variant} because {feature} keeps latency low on every device.",
		},
		foreignNouns: map[string][]string{
			"de": {"wlan router", "wifi router"},
			"fr": {"routeur wifi", "routeur sans fil"},
			"es": {"router wifi", "enrutador inalámbrico"},
			"it": {"router wifi", "router wireless"},
		},
		priceBase: 70, priceSpread: 230,
	},
	{
		// Category deliberately excluded by the simulated expert annotation
		// of §3.3 ("we make the decision to exclude adult products"): it
		// exists so the exclusion path is exercised end-to-end.
		name:        "adult products",
		nouns:       []string{"adult novelty item", "adult toy", "adult gift set"},
		brands:      []brandSpec{{"NightVelvet", nil}, {"Aphrodite", nil}, {"RougeAmour", nil}},
		seriesWords: []string{"Desire", "Passion", "Noir", "Velvet", "Secret", "Charm"},
		dims: []variantDim{
			{"model", []string{"One", "Two", "Three", "Four", "Five"}},
		},
		features: []string{"discreet packaging", "body safe silicone", "rechargeable", "waterproof", "gift boxed"},
		descTemplates: []string{
			"The {brand} {series} {variant} {noun} ships in {feature} for complete privacy.",
			"Crafted from premium materials the {series} {variant} offers {feature}.",
		},
		foreignNouns: map[string][]string{
			"de": {"erotikartikel"},
			"fr": {"article pour adultes"},
			"es": {"artículo para adultos"},
			"it": {"articolo per adulti"},
		},
		priceBase: 40, priceSpread: 80,
	},
}

// AdultCategoryName is the category the simulated expert annotators mark as
// "avoid" during group curation.
const AdultCategoryName = "adult products"
