// Package corpus synthesizes the web-scale product corpus that substitutes
// for the WDC Product Data Corpus V2020 (PDC2020, §3.1). E-shops render
// heterogeneous offers for catalog products into schema.org-annotated HTML
// pages; the pages are re-extracted through internal/schemaorg, grouped into
// clusters via product identifiers, and handed to the cleansing pipeline.
//
// Ground truth (which catalog product an offer really describes, which
// offers are injected noise) is carried alongside so tests and the
// label-quality study can audit every later pipeline stage.
package corpus

import (
	"sort"

	"wdcproducts/internal/schemaorg"
)

// Truth is the generator-side ground truth for one offer.
type Truth struct {
	// ProductID is the catalog product the offer text actually describes.
	ProductID int
	// Lang is the language the offer was rendered in ("en", "de", ...).
	Lang string
	// Noise marks offers injected into a foreign cluster (their identifier
	// points at a different product than their text).
	Noise bool
	// Duplicate marks exact re-listings of an earlier offer.
	Duplicate bool
	// ShortTitle marks offers whose title was truncated below five tokens.
	ShortTitle bool
}

// Corpus is the extracted, identifier-clustered offer collection.
type Corpus struct {
	// Products is the generating catalog; index = Product.ID.
	Products []Product
	// Offers holds all extracted offers; Offer.ID indexes Truth.
	Offers []schemaorg.Offer
	// Truth maps Offer.ID to generator ground truth.
	Truth map[int64]Truth
	// Clusters maps ClusterID to indices into Offers.
	Clusters map[int64][]int
	// ClusterProduct maps ClusterID to the catalog product whose
	// identifier formed the cluster.
	ClusterProduct map[int64]int
	// Stats carries per-step pipeline counts (Figure 2).
	Stats GenStats
}

// GenStats records the counts the generation/extraction steps produce, the
// numbers visualized along the Figure 2 pipeline.
type GenStats struct {
	CatalogProducts int
	PagesGenerated  int
	ListingPages    int
	AdPages         int
	PagesExtracted  int
	OffersExtracted int
	NoIdentifier    int
	OffersClustered int
	Clusters        int
}

// ClusterIDs returns all cluster ids in ascending order.
func (c *Corpus) ClusterIDs() []int64 {
	ids := make([]int64, 0, len(c.Clusters))
	for id := range c.Clusters {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// ClusterOffers returns the offers of one cluster.
func (c *Corpus) ClusterOffers(clusterID int64) []schemaorg.Offer {
	idxs := c.Clusters[clusterID]
	out := make([]schemaorg.Offer, 0, len(idxs))
	for _, i := range idxs {
		out = append(out, c.Offers[i])
	}
	return out
}

// OfferTruth returns the ground truth for an offer id.
func (c *Corpus) OfferTruth(offerID int64) (Truth, bool) {
	t, ok := c.Truth[offerID]
	return t, ok
}

// RemoveOffers returns a copy of the corpus without the offers whose ids
// are in the drop set, re-deriving the cluster index. Cleansing steps use
// it so the original corpus stays immutable.
func (c *Corpus) RemoveOffers(drop map[int64]bool) *Corpus {
	out := &Corpus{
		Products:       c.Products,
		Truth:          c.Truth,
		ClusterProduct: map[int64]int{},
		Clusters:       map[int64][]int{},
		Stats:          c.Stats,
	}
	keepCluster := map[int64]bool{}
	for _, o := range c.Offers {
		if drop[o.ID] {
			continue
		}
		out.Offers = append(out.Offers, o)
		keepCluster[o.ClusterID] = true
	}
	for i, o := range out.Offers {
		out.Clusters[o.ClusterID] = append(out.Clusters[o.ClusterID], i)
	}
	for id := range keepCluster {
		out.ClusterProduct[id] = c.ClusterProduct[id]
	}
	return out
}

// PruneSmallClusters drops clusters with fewer than minSize offers,
// mirroring PDC2020's restriction to clusters of size >= 2.
func (c *Corpus) PruneSmallClusters(minSize int) *Corpus {
	drop := map[int64]bool{}
	for id, idxs := range c.Clusters {
		if len(idxs) < minSize {
			for _, i := range idxs {
				drop[c.Offers[i].ID] = true
			}
			_ = id
		}
	}
	return c.RemoveOffers(drop)
}

// Titles returns every offer title, the training corpus for the embedding
// model and the BPE tokenizer.
func (c *Corpus) Titles() []string {
	out := make([]string, len(c.Offers))
	for i, o := range c.Offers {
		out[i] = o.Title
	}
	return out
}

// rebuildClusters re-derives Clusters from the Offers' ClusterID fields.
func (c *Corpus) rebuildClusters() {
	c.Clusters = map[int64][]int{}
	for i, o := range c.Offers {
		c.Clusters[o.ClusterID] = append(c.Clusters[o.ClusterID], i)
	}
}
