package corpus

import (
	"fmt"

	"wdcproducts/internal/schemaorg"
	"wdcproducts/internal/xrand"
)

// Config controls corpus generation.
type Config struct {
	Catalog CatalogConfig
	Render  RenderConfig
	// Shops is the number of distinct e-shops emitting pages.
	Shops int
	// Offer count ranges per product regime (pre-cleansing; the upper
	// heavy bound exceeds the paper's cap of 15 because cleansing removes
	// contaminated offers and splitting caps at 15 anyway).
	HeavyMinOffers, HeavyMaxOffers int
	LightMinOffers, LightMaxOffers int
	// Contamination rates. These offers are generated in addition to the
	// base counts so the cleansing steps (§3.2) have realistic work while
	// post-cleansing cluster sizes remain controlled.
	PNonEnglish   float64 // extra non-English offer per base offer
	PDuplicate    float64 // extra exact-duplicate offer per base offer
	PShortTitle   float64 // extra short-title offer per base offer
	PClusterNoise float64 // per heavy cluster: inject one wrong-product offer
	PNoIdentifier float64 // offer rendered without any identifier
	PListingPage  float64 // per cluster: emit one multi-product listing page
}

// DefaultConfig returns the paper-scale generation configuration.
func DefaultConfig() Config {
	return Config{
		Catalog:        DefaultCatalogConfig(),
		Render:         DefaultRenderConfig(),
		Shops:          300,
		HeavyMinOffers: 9, HeavyMaxOffers: 16,
		LightMinOffers: 3, LightMaxOffers: 7,
		PNonEnglish:   0.18,
		PDuplicate:    0.05,
		PShortTitle:   0.04,
		PClusterNoise: 0.06,
		PNoIdentifier: 0.02,
		PListingPage:  0.02,
	}
}

// TinyConfig returns a configuration for fast unit tests.
func TinyConfig() Config {
	cfg := DefaultConfig()
	cfg.Catalog.SeriesPerBrand = 1
	cfg.Shops = 40
	cfg.HeavyMinOffers, cfg.HeavyMaxOffers = 8, 12
	cfg.LightMinOffers, cfg.LightMaxOffers = 3, 5
	return cfg
}

// genRecord ties a generated page to its ground truth; pages and records
// stay index-aligned through extraction.
type genRecord struct {
	truth   Truth
	listing bool
}

// Generate runs the full §3.1 substitute: catalog synthesis, per-shop offer
// rendering, schema.org page emission, extraction, and identifier-based
// cluster grouping. The result is the raw (pre-cleansing) corpus.
func Generate(cfg Config, src *xrand.Source) *Corpus {
	catRng := src.Stream("catalog")
	products := BuildCatalog(cfg.Catalog, catRng)
	specByName := map[string]*categorySpec{}
	for i := range catalogSpecs {
		specByName[catalogSpecs[i].name] = &catalogSpecs[i]
	}

	offerRng := src.Stream("offers")
	pageRng := src.Stream("pages")
	var pages []schemaorg.Page
	var records []genRecord
	stats := GenStats{CatalogProducts: len(products)}

	emit := func(o schemaorg.Offer, truth Truth, listing bool, extra *schemaorg.Offer) {
		shop := pageRng.Intn(maxInt(cfg.Shops, 1))
		o.ShopID = shop
		format := schemaorg.FormatJSONLD
		if shop%2 == 1 {
			format = schemaorg.FormatMicrodata
		}
		url := fmt.Sprintf("https://shop%d.example/p/%d", shop, len(pages))
		var page schemaorg.Page
		if listing && extra != nil {
			page = schemaorg.RenderPage(url, shop, format, o, *extra)
			stats.ListingPages++
		} else {
			page = schemaorg.RenderPage(url, shop, format, o)
		}
		pages = append(pages, page)
		records = append(records, genRecord{truth: truth, listing: listing})
	}

	foreignLangs := []string{"de", "fr", "es", "it"}
	for pi := range products {
		p := &products[pi]
		spec := specByName[p.Category]
		n := xrand.IntBetween(offerRng, cfg.LightMinOffers, cfg.LightMaxOffers)
		if p.Heavy {
			n = xrand.IntBetween(offerRng, cfg.HeavyMinOffers, cfg.HeavyMaxOffers)
		}
		var lastGood *schemaorg.Offer
		for k := 0; k < n; k++ {
			o := renderOffer(p, spec, cfg.Render, offerRng)
			if xrand.Bool(offerRng, cfg.PNoIdentifier) {
				o.GTIN, o.MPN, o.SKU = "", "", ""
			}
			good := o
			lastGood = &good
			emit(o, Truth{ProductID: p.ID, Lang: "en"}, false, nil)

			// Contamination offers ride on top of the base count.
			if xrand.Bool(offerRng, cfg.PNonEnglish) {
				lang := foreignLangs[offerRng.Intn(len(foreignLangs))]
				fo := renderForeignOffer(p, spec, lang, cfg.Render, offerRng)
				emit(fo, Truth{ProductID: p.ID, Lang: lang}, false, nil)
			}
			if xrand.Bool(offerRng, cfg.PDuplicate) {
				dup := o // exact same text from another shop
				emit(dup, Truth{ProductID: p.ID, Lang: "en", Duplicate: true}, false, nil)
			}
			if xrand.Bool(offerRng, cfg.PShortTitle) {
				st := renderOffer(p, spec, cfg.Render, offerRng)
				st.Title = shortenTitle(st.Title, offerRng)
				emit(st, Truth{ProductID: p.ID, Lang: "en", ShortTitle: true}, false, nil)
			}
		}
		// Cluster noise: an offer whose text describes a different product
		// but which carries this product's identifiers (mis-annotated shop
		// data, the 1.8-6.9% noise §3.1 reports).
		if p.Heavy && xrand.Bool(offerRng, cfg.PClusterNoise) && len(products) > 1 {
			other := offerRng.Intn(len(products))
			if other == p.ID {
				other = (other + 1) % len(products)
			}
			op := &products[other]
			noisy := renderOffer(op, specByName[op.Category], cfg.Render, offerRng)
			noisy.GTIN, noisy.MPN = p.GTIN, p.ModelCode
			emit(noisy, Truth{ProductID: other, Lang: "en", Noise: true}, false, nil)
		}
		// Listing pages: a page advertising two sibling products at once;
		// extraction drops the whole page (§3.1).
		if xrand.Bool(offerRng, cfg.PListingPage) && lastGood != nil {
			second := renderOffer(p, spec, cfg.Render, offerRng)
			emit(*lastGood, Truth{ProductID: p.ID, Lang: "en"}, true, &second)
		}
	}
	stats.PagesGenerated = len(pages)

	// Extraction: parse every page; drop listing pages.
	c := &Corpus{
		Products:       products,
		Truth:          map[int64]Truth{},
		Clusters:       map[int64][]int{},
		ClusterProduct: map[int64]int{},
	}
	var nextID int64
	for i, page := range pages {
		extracted := schemaorg.ExtractPage(page)
		if len(extracted) != 1 {
			continue // listing page or extraction failure
		}
		stats.PagesExtracted++
		o := extracted[0]
		o.ID = nextID
		nextID++
		c.Offers = append(c.Offers, o)
		c.Truth[o.ID] = records[i].truth
	}
	stats.OffersExtracted = len(c.Offers)

	// Identifier grouping: offers sharing a GTIN/MPN/SKU key form a
	// cluster; offers without identifiers cannot be grouped and are
	// dropped, as in PDC2020.
	clusterByKey := map[string]int64{}
	var kept []schemaorg.Offer
	for _, o := range c.Offers {
		key := o.IdentifierKey()
		if key == "" {
			stats.NoIdentifier++
			delete(c.Truth, o.ID)
			continue
		}
		id, ok := clusterByKey[key]
		if !ok {
			id = int64(len(clusterByKey))
			clusterByKey[key] = id
			// The cluster's owning product is the one whose identifier
			// formed the key; noise offers share the key but have a
			// different truth product.
			c.ClusterProduct[id] = c.Truth[o.ID].ProductID
			if c.Truth[o.ID].Noise {
				// The identifiers of a noise offer belong to the cluster
				// owner, not the text's product; resolve via catalog.
				c.ClusterProduct[id] = productByGTIN(products, o.GTIN)
			}
		}
		o.ClusterID = id
		kept = append(kept, o)
	}
	c.Offers = kept
	c.rebuildClusters()
	stats.OffersClustered = len(c.Offers)
	stats.Clusters = len(c.Clusters)
	c.Stats = stats
	return c
}

func productByGTIN(products []Product, gtin string) int {
	for i := range products {
		if products[i].GTIN == gtin {
			return i
		}
	}
	return -1
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// ShopCount returns the number of distinct shops contributing offers, the
// "# Sources" statistic of Table 6.
func (c *Corpus) ShopCount() int {
	seen := map[int]bool{}
	for _, o := range c.Offers {
		seen[o.ShopID] = true
	}
	return len(seen)
}
