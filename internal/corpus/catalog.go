package corpus

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"strings"

	"wdcproducts/internal/xrand"
)

// Product is one real-world product entity of the synthetic catalog. It is
// the ground-truth unit of the benchmark: offers referring to the same
// Product are matches.
type Product struct {
	ID       int
	Category string
	Brand    string
	// BrandAbbrevs are alternative brand surface forms vendors may use.
	BrandAbbrevs []string
	Series       string
	// VariantDim/Variant identify the single attribute along which series
	// siblings differ (capacity, size, model, ...), the corner-case device.
	VariantDim string
	Variant    string
	// SeriesKey is shared by all siblings of a series; products sharing it
	// are near-duplicates textually and form natural hard negatives.
	SeriesKey string
	// Features are the spec tokens this product's offers may mention.
	Features  []string
	ModelCode string
	GTIN      string
	BasePrice float64
	// Heavy products receive 7-15 offers (the paper's "seen" pool);
	// light products receive 2-6 offers (the "unseen" pool).
	Heavy bool
}

// CatalogConfig controls catalog synthesis.
type CatalogConfig struct {
	// SeriesPerBrand is how many series each brand publishes per category.
	SeriesPerBrand int
	// MinSiblings/MaxSiblings bound the number of variant siblings per
	// series. MinSiblings must be at least 5 so that every series can
	// donate a seed plus four similar products for an 80% corner-case set.
	MinSiblings, MaxSiblings int
	// HeavySeriesFraction is the probability that a series is assigned to
	// the heavy (7-15 offers) regime.
	HeavySeriesFraction float64
}

// DefaultCatalogConfig sizes the catalog so that paper-scale selection
// (500 seen + 500 unseen products per corner-case ratio) is feasible.
func DefaultCatalogConfig() CatalogConfig {
	return CatalogConfig{
		SeriesPerBrand:      4,
		MinSiblings:         5,
		MaxSiblings:         7,
		HeavySeriesFraction: 0.5,
	}
}

// BuildCatalog synthesizes the product catalog from the embedded category
// specs. The rng drives series sampling; the same stream always yields the
// same catalog.
func BuildCatalog(cfg CatalogConfig, rng *rand.Rand) []Product {
	if cfg.MinSiblings < 2 {
		cfg.MinSiblings = 2
	}
	if cfg.MaxSiblings < cfg.MinSiblings {
		cfg.MaxSiblings = cfg.MinSiblings
	}
	var products []Product
	for _, spec := range catalogSpecs {
		for _, brand := range spec.brands {
			// Draw distinct series names for this brand.
			n := cfg.SeriesPerBrand
			if n > len(spec.seriesWords) {
				n = len(spec.seriesWords)
			}
			idxs := xrand.SampleWithoutReplacement(rng, len(spec.seriesWords), n)
			sort.Ints(idxs) // deterministic order independent of sample order
			for _, si := range idxs {
				series := spec.seriesWords[si]
				dim := spec.dims[rng.Intn(len(spec.dims))]
				want := xrand.IntBetween(rng, cfg.MinSiblings, cfg.MaxSiblings)
				if want > len(dim.values) {
					want = len(dim.values)
				}
				// Contiguous variant runs ("1TB","2TB","3TB"...) make the
				// most confusable siblings, like real assortments.
				start := 0
				if len(dim.values) > want {
					start = rng.Intn(len(dim.values) - want + 1)
				}
				heavy := xrand.Bool(rng, cfg.HeavySeriesFraction)
				// Features are drawn once per series: real siblings share
				// their spec sheet except for the variant dimension, which
				// is what makes them textual near-duplicates (the negative
				// corner-case device of §3.4).
				nFeat := 3
				if nFeat > len(spec.features) {
					nFeat = len(spec.features)
				}
				featIdx := xrand.SampleWithoutReplacement(rng, len(spec.features), nFeat)
				sort.Ints(featIdx)
				feats := make([]string, 0, nFeat)
				for _, fi := range featIdx {
					feats = append(feats, spec.features[fi])
				}
				for v := start; v < start+want; v++ {
					variant := dim.values[v]
					p := Product{
						ID:           len(products),
						Category:     spec.name,
						Brand:        brand.name,
						BrandAbbrevs: brand.abbrevs,
						Series:       series,
						VariantDim:   dim.name,
						Variant:      variant,
						SeriesKey:    spec.name + "|" + brand.name + "|" + series,
						Features:     feats,
						BasePrice:    spec.priceBase + rng.Float64()*spec.priceSpread,
						Heavy:        heavy,
					}
					p.ModelCode = modelCode(&p)
					p.GTIN = gtin13(&p)
					products = append(products, p)
				}
			}
		}
	}
	return products
}

// modelCode derives a deterministic manufacturer part number from the
// product identity, shaped like real MPNs (letter prefix + digits + suffix).
func modelCode(p *Product) string {
	h := fnv.New64a()
	h.Write([]byte(p.SeriesKey + "|" + p.Variant))
	sum := h.Sum64()
	prefix := brandPrefix(p.Brand)
	digits := fmt.Sprintf("%04d", sum%10000)
	suffix := string(rune('A'+(sum/10000)%26)) + string(rune('A'+(sum/260000)%26))
	varDigits := ""
	for _, r := range p.Variant {
		if r >= '0' && r <= '9' {
			varDigits += string(r)
		}
		if len(varDigits) == 3 {
			break
		}
	}
	return prefix + varDigits + digits + suffix
}

func brandPrefix(brand string) string {
	fields := strings.Fields(brand)
	if len(fields) >= 2 {
		return strings.ToUpper(fields[0][:1] + fields[1][:1])
	}
	up := strings.ToUpper(brand)
	if len(up) >= 2 {
		return up[:2]
	}
	return up
}

// gtin13 derives a deterministic 13-digit GTIN (12 digits + standard GS1
// check digit) from the product identity.
func gtin13(p *Product) string {
	h := fnv.New64a()
	h.Write([]byte("gtin|" + p.SeriesKey + "|" + p.Variant))
	sum := h.Sum64()
	digits := make([]int, 12)
	for i := range digits {
		digits[i] = int(sum % 10)
		sum /= 10
		if sum == 0 {
			sum = 987654321 + uint64(i)
		}
	}
	check := 0
	for i, d := range digits {
		if i%2 == 0 {
			check += d
		} else {
			check += 3 * d
		}
	}
	check = (10 - check%10) % 10
	var b strings.Builder
	for _, d := range digits {
		b.WriteByte(byte('0' + d))
	}
	b.WriteByte(byte('0' + check))
	return b.String()
}

// SeriesSiblings indexes the catalog by SeriesKey.
func SeriesSiblings(products []Product) map[string][]int {
	out := make(map[string][]int)
	for _, p := range products {
		out[p.SeriesKey] = append(out[p.SeriesKey], p.ID)
	}
	return out
}
