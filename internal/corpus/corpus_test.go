package corpus

import (
	"strings"
	"testing"

	"wdcproducts/internal/textutil"
	"wdcproducts/internal/xrand"
)

func tinyCorpus(t *testing.T) *Corpus {
	t.Helper()
	return Generate(TinyConfig(), xrand.New(1234))
}

func TestBuildCatalogStructure(t *testing.T) {
	cfg := DefaultCatalogConfig()
	products := BuildCatalog(cfg, xrand.New(1).Stream("catalog"))
	if len(products) < 800 {
		t.Fatalf("catalog too small: %d products", len(products))
	}
	siblings := SeriesSiblings(products)
	for key, ids := range siblings {
		if len(ids) < cfg.MinSiblings {
			t.Errorf("series %s has %d siblings, want >= %d", key, len(ids), cfg.MinSiblings)
		}
		// Siblings share brand+series but differ in variant.
		seen := map[string]bool{}
		for _, id := range ids {
			p := products[id]
			if seen[p.Variant] {
				t.Errorf("series %s has duplicate variant %q", key, p.Variant)
			}
			seen[p.Variant] = true
		}
	}
	// IDs are dense and self-referential.
	for i, p := range products {
		if p.ID != i {
			t.Fatalf("product %d has ID %d", i, p.ID)
		}
		if p.GTIN == "" || p.ModelCode == "" {
			t.Fatalf("product %d missing identifiers: %+v", i, p)
		}
		if len(p.GTIN) != 13 {
			t.Fatalf("GTIN length = %d", len(p.GTIN))
		}
	}
}

func TestCatalogDeterminism(t *testing.T) {
	a := BuildCatalog(DefaultCatalogConfig(), xrand.New(7).Stream("catalog"))
	b := BuildCatalog(DefaultCatalogConfig(), xrand.New(7).Stream("catalog"))
	if len(a) != len(b) {
		t.Fatalf("catalog sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].GTIN != b[i].GTIN || a[i].Variant != b[i].Variant {
			t.Fatalf("catalog differs at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestGTINCheckDigit(t *testing.T) {
	products := BuildCatalog(DefaultCatalogConfig(), xrand.New(2).Stream("catalog"))
	for _, p := range products[:50] {
		sum := 0
		for i := 0; i < 12; i++ {
			d := int(p.GTIN[i] - '0')
			if i%2 == 0 {
				sum += d
			} else {
				sum += 3 * d
			}
		}
		want := (10 - sum%10) % 10
		if int(p.GTIN[12]-'0') != want {
			t.Fatalf("GTIN %s has wrong check digit", p.GTIN)
		}
	}
}

func TestGenerateBasics(t *testing.T) {
	c := tinyCorpus(t)
	if len(c.Offers) == 0 {
		t.Fatal("no offers generated")
	}
	if len(c.Clusters) == 0 {
		t.Fatal("no clusters formed")
	}
	if c.Stats.PagesGenerated <= c.Stats.PagesExtracted {
		t.Errorf("listing pages should be dropped: generated %d, extracted %d",
			c.Stats.PagesGenerated, c.Stats.PagesExtracted)
	}
	if c.Stats.NoIdentifier == 0 {
		t.Error("expected some offers without identifiers")
	}
	// Every offer has truth and belongs to its cluster index.
	for i, o := range c.Offers {
		if _, ok := c.Truth[o.ID]; !ok {
			t.Fatalf("offer %d missing truth", o.ID)
		}
		found := false
		for _, idx := range c.Clusters[o.ClusterID] {
			if idx == i {
				found = true
			}
		}
		if !found {
			t.Fatalf("offer %d not in its cluster index", o.ID)
		}
	}
}

func TestGenerateDeterminism(t *testing.T) {
	a := Generate(TinyConfig(), xrand.New(99))
	b := Generate(TinyConfig(), xrand.New(99))
	if len(a.Offers) != len(b.Offers) {
		t.Fatalf("offer counts differ: %d vs %d", len(a.Offers), len(b.Offers))
	}
	for i := range a.Offers {
		if a.Offers[i].Title != b.Offers[i].Title || a.Offers[i].ClusterID != b.Offers[i].ClusterID {
			t.Fatalf("offers differ at %d", i)
		}
	}
}

func TestClusterPurity(t *testing.T) {
	c := tinyCorpus(t)
	noisyClusters := 0
	for id, idxs := range c.Clusters {
		owner := c.ClusterProduct[id]
		impure := 0
		for _, i := range idxs {
			truth := c.Truth[c.Offers[i].ID]
			if truth.ProductID != owner {
				impure++
				if !truth.Noise {
					t.Fatalf("cluster %d contains non-noise offer of wrong product", id)
				}
			}
		}
		if impure > 0 {
			noisyClusters++
		}
	}
	if noisyClusters == 0 {
		t.Error("expected some noisy clusters from PClusterNoise")
	}
	// Noise should stay a small minority, like the 1.8-6.9% of PDC2020.
	if frac := float64(noisyClusters) / float64(len(c.Clusters)); frac > 0.2 {
		t.Errorf("too many noisy clusters: %.2f", frac)
	}
}

func TestContaminationPresent(t *testing.T) {
	c := tinyCorpus(t)
	var foreign, dup, short int
	for _, tr := range c.Truth {
		if tr.Lang != "en" {
			foreign++
		}
		if tr.Duplicate {
			dup++
		}
		if tr.ShortTitle {
			short++
		}
	}
	if foreign == 0 || dup == 0 || short == 0 {
		t.Fatalf("contamination missing: foreign=%d dup=%d short=%d", foreign, dup, short)
	}
}

func TestHeavyClusterSizes(t *testing.T) {
	cfg := TinyConfig()
	c := Generate(cfg, xrand.New(5))
	for id, idxs := range c.Clusters {
		owner := c.ClusterProduct[id]
		if owner < 0 || owner >= len(c.Products) {
			continue
		}
		// Count only clean English base offers (what survives cleansing).
		clean := 0
		for _, i := range idxs {
			tr := c.Truth[c.Offers[i].ID]
			if tr.Lang == "en" && !tr.Noise && !tr.Duplicate && !tr.ShortTitle {
				clean++
			}
		}
		p := c.Products[owner]
		// Base offers can lose their identifiers (PNoIdentifier) and drop
		// out at grouping, so allow a small deficit below the base count.
		if p.Heavy && clean < cfg.HeavyMinOffers-2 {
			t.Errorf("heavy cluster %d has only %d clean offers", id, clean)
		}
		if !p.Heavy && clean > cfg.LightMaxOffers {
			t.Errorf("light cluster %d has %d clean offers", id, clean)
		}
	}
}

func TestRenderOfferShape(t *testing.T) {
	products := BuildCatalog(DefaultCatalogConfig(), xrand.New(3).Stream("catalog"))
	rng := xrand.New(3).Stream("render")
	spec := &catalogSpecs[0]
	var withDesc, withBrand, withPrice, total int
	var titleLens []int
	for i := 0; i < 400; i++ {
		o := renderOffer(&products[i%len(products)], spec, DefaultRenderConfig(), rng)
		total++
		if o.Title == "" {
			t.Fatal("empty title rendered")
		}
		titleLens = append(titleLens, textutil.WordCount(o.Title))
		if o.Description != "" {
			withDesc++
		}
		if o.Brand != "" {
			withBrand++
		}
		if o.Price != "" {
			withPrice++
		}
	}
	// Densities should land near the Table 2 calibration targets.
	checkRate := func(name string, got, want, tol float64) {
		if got < want-tol || got > want+tol {
			t.Errorf("%s density = %.2f, want %.2f±%.2f", name, got, want, tol)
		}
	}
	checkRate("description", float64(withDesc)/float64(total), 0.76, 0.10)
	checkRate("brand", float64(withBrand)/float64(total), 0.35, 0.10)
	checkRate("price", float64(withPrice)/float64(total), 0.93, 0.07)
	// Median title length near 8 words.
	sortInts(titleLens)
	med := titleLens[len(titleLens)/2]
	if med < 5 || med > 11 {
		t.Errorf("median title length = %d, want ~8", med)
	}
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

func TestSiblingTitleSimilarity(t *testing.T) {
	// Sibling products must render similar titles (the corner-case device):
	// shared brand+series tokens with only the variant differing.
	products := BuildCatalog(DefaultCatalogConfig(), xrand.New(11).Stream("catalog"))
	siblings := SeriesSiblings(products)
	rng := xrand.New(11).Stream("render")
	specByName := map[string]*categorySpec{}
	for i := range catalogSpecs {
		specByName[catalogSpecs[i].name] = &catalogSpecs[i]
	}
	for key, ids := range siblings {
		if len(ids) < 2 {
			continue
		}
		a := products[ids[0]]
		b := products[ids[1]]
		oa := renderOffer(&a, specByName[a.Category], DefaultRenderConfig(), rng)
		ob := renderOffer(&b, specByName[b.Category], DefaultRenderConfig(), rng)
		sa := textutil.TokenSet(oa.Title)
		sb := textutil.TokenSet(ob.Title)
		shared := 0
		for tok := range sa {
			if sb[tok] {
				shared++
			}
		}
		if shared == 0 {
			t.Fatalf("series %s siblings share no title tokens: %q vs %q", key, oa.Title, ob.Title)
		}
		break // one series suffices; rendering is uniform
	}
}

func TestRewriteVariant(t *testing.T) {
	rng := xrand.New(1).Stream("v")
	seen := map[string]bool{}
	for i := 0; i < 40; i++ {
		seen[rewriteVariant("2TB", rng)] = true
	}
	if !seen["2 TB"] || !seen["2000GB"] {
		t.Errorf("2TB rewrites missing: %v", seen)
	}
	if got := rewriteVariant("red switches", rng); got != "red switches" {
		t.Errorf("non-unit variant rewritten: %q", got)
	}
	// Unit rewrites must normalize back to the same canonical token.
	canon := func(s string) string {
		return strings.Join(textutil.NormalizeUnits(textutil.Tokenize(s)), " ")
	}
	if canon("2TB") != canon("2000GB") || canon("2TB") != canon("2 TB") {
		t.Error("unit rewrites not canonically equal")
	}
}

func TestRemoveOffersAndPrune(t *testing.T) {
	c := tinyCorpus(t)
	// Drop every offer of the first cluster.
	ids := c.ClusterIDs()
	first := ids[0]
	drop := map[int64]bool{}
	for _, i := range c.Clusters[first] {
		drop[c.Offers[i].ID] = true
	}
	c2 := c.RemoveOffers(drop)
	if _, ok := c2.Clusters[first]; ok {
		t.Fatal("dropped cluster still present")
	}
	if len(c2.Offers) != len(c.Offers)-len(c.Clusters[first]) {
		t.Fatal("wrong offer count after removal")
	}
	// Prune singletons.
	c3 := c2.PruneSmallClusters(2)
	for id, idxs := range c3.Clusters {
		if len(idxs) < 2 {
			t.Fatalf("cluster %d survived pruning with %d offers", id, len(idxs))
		}
	}
}

func TestShopCount(t *testing.T) {
	c := tinyCorpus(t)
	n := c.ShopCount()
	if n <= 1 || n > TinyConfig().Shops {
		t.Fatalf("ShopCount = %d", n)
	}
}

func TestForeignOfferLanguage(t *testing.T) {
	products := BuildCatalog(DefaultCatalogConfig(), xrand.New(4).Stream("catalog"))
	rng := xrand.New(4).Stream("f")
	o := renderForeignOffer(&products[0], &catalogSpecs[0], "de", DefaultRenderConfig(), rng)
	if o.Description == "" {
		t.Fatal("foreign offer missing description")
	}
	if !strings.Contains(o.Title, products[0].Series) {
		t.Error("foreign title should keep the series name")
	}
}
