package textutil

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestTokenizeBasic(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"", nil},
		{"Seagate BarraCuda 2TB", []string{"seagate", "barracuda", "2tb"}},
		{"WD Blue (WD10EZEX) 7200 RPM!", []string{"wd", "blue", "wd10ezex", "7200", "rpm"}},
		{"USB-C / Thunderbolt", []string{"usb-c", "thunderbolt"}},
		{"  multiple   spaces\tand\nnewlines ", []string{"multiple", "spaces", "and", "newlines"}},
		{"trailing-dash- -leading", []string{"trailing-dash", "leading"}},
		{"ÜBER Größe", []string{"über", "größe"}},
	}
	for _, c := range cases {
		got := Tokenize(c.in)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestTokenizeIdempotent(t *testing.T) {
	f := func(s string) bool {
		once := Tokenize(s)
		twice := Tokenize(strings.Join(once, " "))
		return reflect.DeepEqual(once, twice)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTokenizeLowercases(t *testing.T) {
	f := func(s string) bool {
		for _, tok := range Tokenize(s) {
			if tok != strings.ToLower(tok) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTokenSet(t *testing.T) {
	set := TokenSet("apple apple banana")
	if len(set) != 2 || !set["apple"] || !set["banana"] {
		t.Fatalf("TokenSet wrong: %v", set)
	}
}

func TestTokenCounts(t *testing.T) {
	counts := TokenCounts("a b a a c")
	if counts["a"] != 3 || counts["b"] != 1 || counts["c"] != 1 {
		t.Fatalf("TokenCounts wrong: %v", counts)
	}
}

func TestWordCount(t *testing.T) {
	if WordCount("one two  three") != 3 {
		t.Fatal("WordCount basic failed")
	}
	if WordCount("") != 0 {
		t.Fatal("WordCount empty failed")
	}
}

func TestNonLatinCount(t *testing.T) {
	cases := []struct {
		in   string
		want int
	}{
		{"plain english title", 0},
		{"Größe", 0},            // umlauts are Latin
		{"ноутбук", 7},          // Cyrillic
		{"ssd 硬盘 drive", 2},     // two Han characters
		{"mixed κείμενο 99", 7}, // Greek letters only; digits don't count
	}
	for _, c := range cases {
		if got := NonLatinCount(c.in); got != c.want {
			t.Errorf("NonLatinCount(%q) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestNormalizeUnits(t *testing.T) {
	cases := []struct {
		in, want string
	}{
		{"seagate 1 tb drive", "seagate 1tb drive"},
		{"seagate 1000gb drive", "seagate 1tb drive"},
		{"seagate 1tb drive", "seagate 1tb drive"},
		{"cpu 3000 mhz boost", "cpu 3ghz boost"},
		{"cable 2 m", "cable 2 m"}, // "m" alone is ambiguous, not canonicalized
		{"7200rpm 64mb cache", "7200rpm 64mb cache"},
		{"ram 2000 megabytes", "ram 2gb"},
	}
	for _, c := range cases {
		got := Join(NormalizeUnits(Tokenize(c.in)))
		if got != c.want {
			t.Errorf("NormalizeUnits(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestNormalizeUnitsPreservesLength(t *testing.T) {
	// Normalization may shrink but never grow the token count.
	f := func(s string) bool {
		toks := Tokenize(s)
		return len(NormalizeUnits(toks)) <= len(toks)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCharNGrams(t *testing.T) {
	got := CharNGrams("ab", 2)
	want := []string{"^a", "ab", "b$"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("CharNGrams = %v, want %v", got, want)
	}
	if got := CharNGrams("x", 5); len(got) != 1 {
		t.Fatalf("short-string CharNGrams = %v, want single padded gram", got)
	}
	if CharNGrams("abc", 0) != nil {
		t.Fatal("n=0 should return nil")
	}
}

func TestCharNGramsCount(t *testing.T) {
	f := func(s string, n8 uint8) bool {
		n := int(n8%5) + 1
		grams := CharNGrams(s, n)
		runes := len([]rune(s)) + 2
		if runes < n {
			return len(grams) == 1
		}
		return len(grams) == runes-n+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestEachTokenMatchesTokenize is the property the streaming tokenizer
// must uphold: EachToken emits exactly the Tokenize token sequence (which
// is itself pinned by the reference-semantics tests above) for arbitrary
// input, including unicode, joiners-only tokens, and empty strings.
func TestEachTokenMatchesTokenize(t *testing.T) {
	check := func(s string) bool {
		var streamed []string
		EachToken(s, func(tok string) { streamed = append(streamed, tok) })
		direct := Tokenize(s)
		if len(streamed) != len(direct) {
			return false
		}
		for i := range direct {
			if streamed[i] != direct[i] {
				return false
			}
		}
		return true
	}
	for _, s := range []string{
		"", " ", "...", "-./-", "Seagate BarraCuda 2TB (ST2000DM008)",
		"wd10ezex-08wn4a0", "a/b/c", "ñandú 北京 DÉJÀ-vu", "🎧 x 🎧", ".lead trail.",
	} {
		if !check(s) {
			t.Fatalf("EachToken diverged from Tokenize on %q", s)
		}
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIsNumber(t *testing.T) {
	if !isNumber("3.5") || !isNumber("1000") || isNumber("") || isNumber("1.2.3") || isNumber("x1") {
		t.Fatal("isNumber misclassified")
	}
}

func TestSplitNumberUnit(t *testing.T) {
	num, unit, ok := splitNumberUnit("500gb")
	if !ok || num != "500" || unit != "gb" {
		t.Fatalf("splitNumberUnit(500gb) = %q %q %v", num, unit, ok)
	}
	if _, _, ok := splitNumberUnit("gbonly"); ok {
		t.Fatal("splitNumberUnit should reject unit-only token")
	}
	if _, _, ok := splitNumberUnit("123"); ok {
		t.Fatal("splitNumberUnit should reject number-only token")
	}
}
