// Package textutil provides the text normalization and tokenization
// primitives shared by the corpus cleansing pipeline, the similarity metric
// library, and the matchers.
//
// The WDC Products pipeline operates almost entirely on lower-cased,
// punctuation-stripped word tokens of the offer title and description
// attributes; this package is the single place that defines what a "word"
// is, so every stage agrees.
package textutil

import (
	"strings"
	"unicode"
)

// Tokenize lower-cases s, strips punctuation (keeping alphanumerics and the
// characters '.', '-', '/' inside tokens because they carry model-number
// information such as "wd10ezex-08wn4a0"), and splits on whitespace.
func Tokenize(s string) []string {
	var out []string
	EachToken(s, func(t string) { out = append(out, t) })
	return out
}

// EachToken streams the tokens of s to fn in order, with the exact token
// semantics of Tokenize but without materializing an intermediate
// normalized copy of s or a fields slice. It is the allocation-frugal
// primitive the prepared-corpus interning layer is built on.
func EachToken(s string, fn func(token string)) {
	var buf []rune
	flush := func() {
		// Equivalent of strings.Trim(token, ".-/") on the buffered runes.
		lo, hi := 0, len(buf)
		for lo < hi && isJoiner(buf[lo]) {
			lo++
		}
		for hi > lo && isJoiner(buf[hi-1]) {
			hi--
		}
		if hi > lo {
			fn(string(buf[lo:hi]))
		}
		buf = buf[:0]
	}
	for _, r := range s {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			buf = append(buf, unicode.ToLower(r))
		case isJoiner(r):
			buf = append(buf, r)
		default:
			flush()
		}
	}
	flush()
}

// isJoiner reports whether r is kept inside tokens but trimmed from their
// edges ('.', '-', '/', the model-number joiners).
func isJoiner(r rune) bool { return r == '.' || r == '-' || r == '/' }

// TokenSet returns the set of distinct tokens of s.
func TokenSet(s string) map[string]bool {
	set := make(map[string]bool)
	EachToken(s, func(t string) { set[t] = true })
	return set
}

// TokenCounts returns a bag-of-words count map for s.
func TokenCounts(s string) map[string]int {
	counts := make(map[string]int)
	EachToken(s, func(t string) { counts[t]++ })
	return counts
}

// WordCount returns the number of whitespace-separated words of s without
// further normalization. Used for the short-title cleansing heuristic and
// the Table 2 length statistics, which count raw words.
func WordCount(s string) int {
	return len(strings.Fields(s))
}

// NonLatinCount counts runes that are letters outside the Latin script.
// Digits, punctuation and whitespace never count. The cleansing step keeps
// offers with fewer than four non-Latin characters (§3.2 of the paper).
func NonLatinCount(s string) int {
	n := 0
	for _, r := range s {
		if unicode.IsLetter(r) && !unicode.In(r, unicode.Latin) {
			n++
		}
	}
	return n
}

// NormalizeUnits canonicalizes measurement expressions so "1TB", "1 TB" and
// "1000GB" compare equal after normalization. It implements the domain
// knowledge injection used by the Ditto matcher substitute.
func NormalizeUnits(tokens []string) []string {
	out := make([]string, 0, len(tokens))
	for i := 0; i < len(tokens); i++ {
		tok := tokens[i]
		// Merge "<number> <unit>" into "<number><unit>".
		if isNumber(tok) && i+1 < len(tokens) {
			if canon, ok := canonUnit(tokens[i+1]); ok {
				out = append(out, canonMagnitude(tok, canon))
				i++
				continue
			}
		}
		if num, unit, ok := splitNumberUnit(tok); ok {
			out = append(out, canonMagnitude(num, unit))
			continue
		}
		out = append(out, tok)
	}
	return out
}

// isNumber reports whether tok consists of digits with at most one decimal
// point or comma.
func isNumber(tok string) bool {
	if tok == "" {
		return false
	}
	dots := 0
	for _, r := range tok {
		switch {
		case r >= '0' && r <= '9':
		case r == '.' || r == ',':
			dots++
			if dots > 1 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

var unitCanon = map[string]string{
	"tb": "tb", "terabyte": "tb", "terabytes": "tb",
	"gb": "gb", "gigabyte": "gb", "gigabytes": "gb",
	"mb": "mb", "megabyte": "mb", "megabytes": "mb",
	"ghz": "ghz", "mhz": "mhz",
	"mm": "mm", "cm": "cm", "in": "in", "inch": "in", "inches": "in",
	"g": "g", "kg": "kg", "gram": "g", "grams": "g",
	"w": "w", "watt": "w", "watts": "w",
	"mah": "mah", "rpm": "rpm", "hz": "hz", "ms": "ms",
}

func canonUnit(tok string) (string, bool) {
	c, ok := unitCanon[strings.ToLower(tok)]
	return c, ok
}

// splitNumberUnit splits tokens like "500gb" or "7200rpm" into number and
// canonical unit.
func splitNumberUnit(tok string) (num, unit string, ok bool) {
	i := 0
	for i < len(tok) && (tok[i] >= '0' && tok[i] <= '9' || tok[i] == '.' || tok[i] == ',') {
		i++
	}
	if i == 0 || i == len(tok) {
		return "", "", false
	}
	canon, found := canonUnit(tok[i:])
	if !found || !isNumber(tok[:i]) {
		return "", "", false
	}
	return tok[:i], canon, true
}

// canonMagnitude converts storage magnitudes to a single canonical unit so
// that "1tb" and "1000gb" normalize identically ("1000gb" -> "1tb").
func canonMagnitude(num, unit string) string {
	num = strings.ReplaceAll(num, ",", ".")
	switch unit {
	case "gb":
		if v, rem := wholeNumber(num); rem && v >= 1000 && v%1000 == 0 {
			return itoa(v/1000) + "tb"
		}
	case "mb":
		if v, rem := wholeNumber(num); rem && v >= 1000 && v%1000 == 0 {
			return itoa(v/1000) + "gb"
		}
	case "mhz":
		if v, rem := wholeNumber(num); rem && v >= 1000 && v%1000 == 0 {
			return itoa(v/1000) + "ghz"
		}
	}
	return num + unit
}

func wholeNumber(s string) (int, bool) {
	v := 0
	for _, r := range s {
		if r < '0' || r > '9' {
			return 0, false
		}
		v = v*10 + int(r-'0')
		if v > 1<<30 {
			return 0, false
		}
	}
	return v, true
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// CharNGrams returns the padded character n-grams of s, the representation
// used by the language identifier and the fastText-style embedding hasher.
// The string is padded with '^' and '$' markers.
func CharNGrams(s string, n int) []string {
	if n <= 0 {
		return nil
	}
	padded := "^" + strings.ToLower(s) + "$"
	runes := []rune(padded)
	if len(runes) < n {
		return []string{string(runes)}
	}
	grams := make([]string, 0, len(runes)-n+1)
	for i := 0; i+n <= len(runes); i++ {
		grams = append(grams, string(runes[i:i+n]))
	}
	return grams
}

// Join is strings.Join re-exported for symmetry with Tokenize in callers
// that reconstruct normalized text.
func Join(tokens []string) string { return strings.Join(tokens, " ") }
