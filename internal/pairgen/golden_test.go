package pairgen

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"wdcproducts/internal/simlib"
	"wdcproducts/internal/xrand"
)

var updateGolden = flag.Bool("update", false, "rewrite golden fixtures from the current pair generation output")

// TestGoldenPairs pins the exact §3.6 pair sets generated on the fixture
// members for every dev-size configuration. Recorded before the
// prepared-corpus scoring engine landed; the refactor must reproduce it
// byte for byte, including pair order and metric draw counts.
func TestGoldenPairs(t *testing.T) {
	var sb strings.Builder
	for _, devSize := range []string{"small", "medium", "large"} {
		members, title := fixtureMembers()
		src := xrand.New(42)
		reg := simlib.NewRegistry(src.Stream("golden-reg"), simlib.DefaultMetrics()...)
		pairs := Generate(members, ConfigForDevSize(devSize), title, reg, src.Stream("golden-pairs"))
		fmt.Fprintf(&sb, "dev %s pairs %d\n", devSize, len(pairs))
		for _, p := range pairs {
			fmt.Fprintf(&sb, "%d %d %v %d %d\n", p.A, p.B, p.Match, p.ProdA, p.ProdB)
		}
		counts := reg.DrawCounts()
		for _, m := range simlib.DefaultMetrics() {
			fmt.Fprintf(&sb, "draws %s %d\n", m.Name(), counts[m.Name()])
		}
	}
	path := filepath.Join("testdata", "pairs_golden.txt")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden fixture (run with -update): %v", err)
	}
	if sb.String() != string(want) {
		t.Errorf("output differs from golden %s;\ngot:\n%s\nwant:\n%s", path, sb.String(), want)
	}
}
