package pairgen

import (
	"fmt"
	"testing"

	"wdcproducts/internal/simlib"
	"wdcproducts/internal/xrand"
)

// fixture: 6 products x 4 offers with controlled titles. Products 0/1 and
// 2/3 are near-duplicates (corner negatives); 4/5 are unrelated.
func fixtureMembers() ([]Member, func(int) string) {
	titles := map[int]string{}
	var members []Member
	next := 0
	add := func(product int, base string) {
		m := Member{Product: product}
		for k := 0; k < 4; k++ {
			titles[next] = fmt.Sprintf("%s variant offer %d listing", base, k)
			m.Offers = append(m.Offers, next)
			next++
		}
		members = append(members, m)
	}
	add(0, "seagate barracuda 2tb internal drive")
	add(1, "seagate barracuda 4tb internal drive")
	add(2, "nike pegasus running shoes size 9")
	add(3, "nike pegasus running shoes size 10")
	add(4, "canon pixma wireless printer home")
	add(5, "garmin forerunner gps watch black")
	return members, func(i int) string { return titles[i] }
}

func gen(t *testing.T, cfg Config) ([]Pair, []Member, func(int) string) {
	t.Helper()
	members, title := fixtureMembers()
	src := xrand.New(42)
	reg := simlib.NewRegistry(src.Stream("reg"), simlib.DefaultMetrics()...)
	pairs := Generate(members, cfg, title, reg, src.Stream("pairs"))
	return pairs, members, title
}

func TestPositiveCounts(t *testing.T) {
	pairs, members, _ := gen(t, ConfigForDevSize("large"))
	stats := Summarize(pairs)
	wantPos := 0
	for _, m := range members {
		n := len(m.Offers)
		wantPos += n * (n - 1) / 2
	}
	if stats.Pos != wantPos {
		t.Fatalf("positives = %d, want %d", stats.Pos, wantPos)
	}
}

func TestNegativeCountsPerOffer(t *testing.T) {
	for _, devSize := range []string{"small", "medium", "large"} {
		cfg := ConfigForDevSize(devSize)
		pairs, members, _ := gen(t, cfg)
		stats := Summarize(pairs)
		offers := 0
		for _, m := range members {
			offers += len(m.Offers)
		}
		want := offers * (cfg.CornerNegatives + cfg.RandomNegatives)
		if stats.Neg != want {
			t.Errorf("%s: negatives = %d, want %d", devSize, stats.Neg, want)
		}
	}
}

func TestLabelsCorrect(t *testing.T) {
	pairs, members, _ := gen(t, ConfigForDevSize("large"))
	productOf := map[int]int{}
	for _, m := range members {
		for _, o := range m.Offers {
			productOf[o] = m.Product
		}
	}
	for _, p := range pairs {
		same := productOf[p.A] == productOf[p.B]
		if p.Match != same {
			t.Fatalf("pair (%d,%d) labeled %v but same-product=%v", p.A, p.B, p.Match, same)
		}
		if p.ProdA != productOf[p.A] || p.ProdB != productOf[p.B] {
			t.Fatalf("pair product bookkeeping wrong: %+v", p)
		}
	}
}

func TestNoDuplicatesOrMirrors(t *testing.T) {
	pairs, _, _ := gen(t, ConfigForDevSize("large"))
	seen := map[[2]int]bool{}
	for _, p := range pairs {
		if p.A >= p.B {
			t.Fatalf("pair not ordered: %+v", p)
		}
		key := [2]int{p.A, p.B}
		if seen[key] {
			t.Fatalf("duplicate pair %v", key)
		}
		seen[key] = true
	}
}

func TestCornerNegativesAreSimilar(t *testing.T) {
	pairs, _, title := gen(t, Config{CornerNegatives: 2, RandomNegatives: 0, MaxCandidates: 50})
	// With no random negatives, every negative is a corner negative; the
	// 2tb drive's negatives should come from the 4tb sibling, not from the
	// printer.
	metric := simlib.MetricJaccard()
	var simSum float64
	var n int
	for _, p := range pairs {
		if p.Match {
			continue
		}
		simSum += metric.Sim(title(p.A), title(p.B))
		n++
	}
	if n == 0 {
		t.Fatal("no negatives generated")
	}
	if avg := simSum / float64(n); avg < 0.3 {
		t.Fatalf("corner negatives not similar: avg jaccard %.3f", avg)
	}
}

func TestRandomNegativesLessSimilarThanCorner(t *testing.T) {
	members, title := fixtureMembers()
	src := xrand.New(7)
	reg := simlib.NewRegistry(src.Stream("reg"), simlib.DefaultMetrics()...)
	corner := Generate(members, Config{CornerNegatives: 3, RandomNegatives: 0}, title, reg, src.Stream("a"))
	random := Generate(members, Config{CornerNegatives: 0, RandomNegatives: 3}, title, reg, src.Stream("b"))
	metric := simlib.MetricJaccard()
	avg := func(pairs []Pair) float64 {
		var s float64
		var n int
		for _, p := range pairs {
			if !p.Match {
				s += metric.Sim(title(p.A), title(p.B))
				n++
			}
		}
		return s / float64(n)
	}
	if avg(corner) <= avg(random) {
		t.Fatalf("corner negatives (%.3f) not harder than random (%.3f)", avg(corner), avg(random))
	}
}

func TestDeterminism(t *testing.T) {
	a, _, _ := gen(t, ConfigForDevSize("medium"))
	b, _, _ := gen(t, ConfigForDevSize("medium"))
	if len(a) != len(b) {
		t.Fatalf("pair counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("pairs differ at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestSingleProductNoNegatives(t *testing.T) {
	members := []Member{{Product: 0, Offers: []int{0, 1, 2}}}
	title := func(i int) string { return fmt.Sprintf("same product offer %d", i) }
	src := xrand.New(1)
	reg := simlib.NewRegistry(src.Stream("reg"), simlib.DefaultMetrics()...)
	pairs := Generate(members, ConfigForDevSize("large"), title, reg, src.Stream("p"))
	stats := Summarize(pairs)
	if stats.Neg != 0 {
		t.Fatalf("negatives from a single product: %d", stats.Neg)
	}
	if stats.Pos != 3 {
		t.Fatalf("positives = %d, want 3", stats.Pos)
	}
}

func TestEmptyInput(t *testing.T) {
	src := xrand.New(1)
	reg := simlib.NewRegistry(src.Stream("reg"), simlib.DefaultMetrics()...)
	pairs := Generate(nil, ConfigForDevSize("large"), func(int) string { return "" }, reg, src.Stream("p"))
	if len(pairs) != 0 {
		t.Fatalf("pairs from empty input: %d", len(pairs))
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]Pair{{Match: true}, {Match: false}, {Match: false}})
	if s.All != 3 || s.Pos != 1 || s.Neg != 2 {
		t.Fatalf("Summarize = %+v", s)
	}
}
