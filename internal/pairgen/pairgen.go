// Package pairgen implements §3.6: turning the offer splits into labeled
// pairs for the pair-wise formulation of the benchmark. For every product
// all positive pairs are built; for every offer, K corner negatives (the
// most similar offers of other products, alternating similarity metrics)
// plus one random negative are added. K is 3 for the large/test sets, 2 for
// medium, and 1 for small, modelling reduced labeling effort.
package pairgen

import (
	"math/rand"
	"sort"

	"wdcproducts/internal/simlib"
)

// Member is one product's offer list within a split set.
type Member struct {
	// Product is an opaque product identifier (cluster slot or class id);
	// offers of the same product form positive pairs, offers of different
	// products form negatives.
	Product int
	Offers  []int
}

// Pair is one labeled offer pair. A and B are offer indices (A < B).
type Pair struct {
	A, B  int
	Match bool
	// ProdA and ProdB are the products of A and B for bookkeeping.
	ProdA, ProdB int
}

// Config controls pair generation.
type Config struct {
	// CornerNegatives is K, the number of similarity-searched negatives
	// per offer.
	CornerNegatives int
	// RandomNegatives is the number of uniform random negatives per offer
	// (1 in the paper).
	RandomNegatives int
	// MaxCandidates caps the similarity-search candidate list per offer;
	// candidates are pre-ranked by shared-token count through an inverted
	// index, so the cap trades a little recall for a lot of speed.
	MaxCandidates int
}

// ConfigForDevSize returns the paper's K per development-set size
// ("small", "medium", "large"); test sets use the large configuration.
func ConfigForDevSize(devSize string) Config {
	k := 3
	switch devSize {
	case "small":
		k = 1
	case "medium":
		k = 2
	}
	return Config{CornerNegatives: k, RandomNegatives: 1, MaxCandidates: 120}
}

// Generate builds the pair set for one split. The title function maps an
// offer index to its title text; the registry supplies alternating metrics
// for the corner-negative search. Titles are interned into a private
// prepared corpus; pipelines that generate many splits over the same
// offers share one corpus through GeneratePrepared.
func Generate(members []Member, cfg Config, title func(int) string,
	reg *simlib.Registry, rng *rand.Rand) []Pair {
	prep := simlib.NewPrepared()
	titleID := func(i int) int { return prep.Intern(title(i)) }
	return GeneratePrepared(members, cfg, titleID, reg.Prepare(prep), rng)
}

// GeneratePrepared is Generate on the prepared-corpus similarity engine:
// titleID maps an offer index to its title's interned ID in the corpus the
// registry was bound to. The inverted candidate index and all corner-
// negative scoring run on interned token IDs, byte-identical to the string
// path.
func GeneratePrepared(members []Member, cfg Config, titleID func(int) int,
	reg *simlib.PreparedRegistry, rng *rand.Rand) []Pair {
	if cfg.MaxCandidates <= 0 {
		cfg.MaxCandidates = 120
	}
	corpus := reg.Corpus()
	var pairs []Pair
	seen := map[[2]int]bool{}
	addPair := func(a, b int, match bool, pa, pb int) bool {
		if a == b {
			return false
		}
		if a > b {
			a, b = b, a
			pa, pb = pb, pa
		}
		key := [2]int{a, b}
		if seen[key] {
			return false
		}
		seen[key] = true
		pairs = append(pairs, Pair{A: a, B: b, Match: match, ProdA: pa, ProdB: pb})
		return true
	}

	// Positives: all combinations within each product.
	for _, m := range members {
		for i := 0; i < len(m.Offers); i++ {
			for j := i + 1; j < len(m.Offers); j++ {
				addPair(m.Offers[i], m.Offers[j], true, m.Product, m.Product)
			}
		}
	}

	// Index all offers for negative search.
	type entry struct {
		offer   int
		product int
		titleID int
	}
	var all []entry
	for _, m := range members {
		for _, o := range m.Offers {
			all = append(all, entry{o, m.Product, titleID(o)})
		}
	}
	// Inverted index: interned token ID -> entry positions.
	inv := map[int32][]int32{}
	for i, e := range all {
		for _, tok := range corpus.TokenSet(e.titleID) {
			inv[tok] = append(inv[tok], int32(i))
		}
	}

	sharedCounts := make([]int16, len(all))
	var touched []int32
	for i, e := range all {
		// Candidate generation by shared-token count.
		touched = touched[:0]
		for _, tok := range corpus.TokenSet(e.titleID) {
			for _, j := range inv[tok] {
				if int(j) == i || all[j].product == e.product {
					continue
				}
				if sharedCounts[j] == 0 {
					touched = append(touched, j)
				}
				sharedCounts[j]++
			}
		}
		sort.Slice(touched, func(a, b int) bool {
			if sharedCounts[touched[a]] != sharedCounts[touched[b]] {
				return sharedCounts[touched[a]] > sharedCounts[touched[b]]
			}
			return touched[a] < touched[b]
		})
		cands := touched
		if len(cands) > cfg.MaxCandidates {
			cands = cands[:cfg.MaxCandidates]
		}
		// Offers sharing no token with anything else (an isolated random
		// product, say a lone watch among drives) still need their full
		// negative quota: fall back to arbitrary other-product offers,
		// which the metric will rank at similarity ~0.
		if need := cfg.CornerNegatives + cfg.RandomNegatives + 4; len(cands) < need {
			inCands := map[int32]bool{}
			for _, j := range cands {
				inCands[j] = true
			}
			for j := range all {
				if len(cands) >= need {
					break
				}
				if j == i || all[j].product == e.product || inCands[int32(j)] {
					continue
				}
				cands = append(cands, int32(j))
			}
		}

		// Corner negatives: for each of K picks, draw a metric and take the
		// most similar unused candidate. If the pair already exists (e.g.
		// as a mirror), the next most similar is taken instead (§3.6).
		usedHere := map[int]bool{}
		for k := 0; k < cfg.CornerNegatives && len(cands) > 0; k++ {
			metric := reg.Draw()
			best, bestScore := int32(-1), -1.0
			for _, j := range cands {
				if usedHere[int(j)] {
					continue
				}
				s := metric.SimIDs(e.titleID, all[j].titleID)
				if s > bestScore || (s == bestScore && (best == -1 || j < best)) {
					best, bestScore = j, s
				}
			}
			if best < 0 {
				break
			}
			usedHere[int(best)] = true
			if !addPair(e.offer, all[best].offer, false, e.product, all[best].product) {
				k-- // mirrored pair already present: pick the next one
			}
		}
		// Random negatives.
		for k := 0; k < cfg.RandomNegatives; k++ {
			for attempt := 0; attempt < 20; attempt++ {
				j := rng.Intn(len(all))
				if all[j].product == e.product || usedHere[j] {
					continue
				}
				if addPair(e.offer, all[j].offer, false, e.product, all[j].product) {
					usedHere[j] = true
					break
				}
			}
		}
		for _, j := range touched {
			sharedCounts[j] = 0
		}
	}
	return pairs
}

// Stats summarizes a pair set (the Table 1 columns).
type Stats struct {
	All, Pos, Neg int
}

// Summarize counts positives and negatives.
func Summarize(pairs []Pair) Stats {
	s := Stats{All: len(pairs)}
	for _, p := range pairs {
		if p.Match {
			s.Pos++
		} else {
			s.Neg++
		}
	}
	return s
}
