// Package langid is the language-identification substrate of the cleansing
// pipeline (§3.2). It replaces the fastText language-identification model
// with a character n-gram multinomial Naive Bayes classifier trained on
// embedded multilingual seed corpora.
//
// The classifier exposes the same contract the pipeline needs from
// fastText: Predict(text) returns the most likely language and a
// confidence, and the cleansing step keeps offers whose top label is "en".
package langid

import (
	"math"
	"sort"

	"wdcproducts/internal/textutil"
)

// Prediction is one (language, probability) pair.
type Prediction struct {
	Lang string
	Prob float64
}

// Classifier is a character n-gram Naive Bayes language identifier.
type Classifier struct {
	langs     []string
	ngramSize int
	logPrior  map[string]float64
	// logProb[lang][gram] is the smoothed log likelihood of gram under lang.
	logProb map[string]map[string]float64
	// logUnseen[lang] is the smoothed log likelihood of an unseen gram.
	logUnseen map[string]float64
	vocabSize int
}

// New trains the default classifier (3-grams) on the embedded seed corpora.
func New() *Classifier {
	return NewFromCorpora(seedCorpora, 3)
}

// NewFromCorpora trains a classifier from explicit corpora, used by tests
// and by callers who extend the language set.
func NewFromCorpora(corpora map[string][]string, ngramSize int) *Classifier {
	c := &Classifier{
		ngramSize: ngramSize,
		logPrior:  make(map[string]float64),
		logProb:   make(map[string]map[string]float64),
		logUnseen: make(map[string]float64),
	}
	vocab := make(map[string]bool)
	counts := make(map[string]map[string]float64)
	totals := make(map[string]float64)
	for lang, sentences := range corpora {
		c.langs = append(c.langs, lang)
		counts[lang] = make(map[string]float64)
		for _, s := range sentences {
			for _, g := range textutil.CharNGrams(s, ngramSize) {
				counts[lang][g]++
				totals[lang]++
				vocab[g] = true
			}
		}
	}
	sort.Strings(c.langs)
	c.vocabSize = len(vocab)
	prior := math.Log(1 / float64(len(c.langs)))
	for _, lang := range c.langs {
		c.logPrior[lang] = prior
		c.logProb[lang] = make(map[string]float64, len(counts[lang]))
		denom := totals[lang] + float64(c.vocabSize) // Laplace smoothing
		for g, n := range counts[lang] {
			c.logProb[lang][g] = math.Log((n + 1) / denom)
		}
		c.logUnseen[lang] = math.Log(1 / denom)
	}
	return c
}

// Predict returns the most probable language for text together with its
// posterior probability. Empty or non-textual input predicts "en" with
// probability 1/len(langs) — the pipeline treats that as low confidence.
func (c *Classifier) Predict(text string) Prediction {
	ps := c.PredictAll(text)
	return ps[0]
}

// PredictAll returns the posterior distribution over all languages, sorted
// by descending probability (ties broken by language code).
func (c *Classifier) PredictAll(text string) []Prediction {
	grams := textutil.CharNGrams(text, c.ngramSize)
	scores := make([]float64, len(c.langs))
	for i, lang := range c.langs {
		s := c.logPrior[lang]
		lp := c.logProb[lang]
		unseen := c.logUnseen[lang]
		for _, g := range grams {
			if v, ok := lp[g]; ok {
				s += v
			} else {
				s += unseen
			}
		}
		scores[i] = s
	}
	// Softmax in log space for stable posteriors.
	maxScore := scores[0]
	for _, s := range scores[1:] {
		if s > maxScore {
			maxScore = s
		}
	}
	total := 0.0
	for i := range scores {
		scores[i] = math.Exp(scores[i] - maxScore)
		total += scores[i]
	}
	out := make([]Prediction, len(c.langs))
	for i, lang := range c.langs {
		out[i] = Prediction{Lang: lang, Prob: scores[i] / total}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Prob != out[b].Prob {
			return out[a].Prob > out[b].Prob
		}
		return out[a].Lang < out[b].Lang
	})
	return out
}

// IsEnglish reports whether the classifier's top prediction for text is
// English — exactly the cleansing criterion of §3.2 ("keep all rows where
// the classifier confidence is highest for the English language").
func (c *Classifier) IsEnglish(text string) bool {
	return c.Predict(text).Lang == "en"
}
