package langid

import (
	"math"
	"strings"
	"testing"
)

func TestPredictSeedLanguages(t *testing.T) {
	c := New()
	cases := map[string]string{
		"the shipping is free and the warranty covers two years": "en",
		"die lieferung ist kostenlos und die garantie gilt":      "de",
		"la livraison est gratuite et la garantie couvre":        "fr",
		"el envío es gratuito y la garantía cubre dos años":      "es",
		"la spedizione è gratuita e la garanzia copre due anni":  "it",
		"de verzending is gratis en de garantie dekt twee jaar":  "nl",
		"o envio é grátis e a garantia cobre dois anos":          "pt",
	}
	for text, want := range cases {
		if got := c.Predict(text); got.Lang != want {
			t.Errorf("Predict(%q) = %s (p=%.3f), want %s", text, got.Lang, got.Prob, want)
		}
	}
}

func TestHeldOutAccuracy(t *testing.T) {
	// Train on all but the last 4 sentences per language, evaluate on those.
	train := map[string][]string{}
	type heldOut struct{ lang, text string }
	var test []heldOut
	for lang, sents := range seedCorpora {
		cut := len(sents) - 4
		train[lang] = sents[:cut]
		for _, s := range sents[cut:] {
			test = append(test, heldOut{lang, s})
		}
	}
	c := NewFromCorpora(train, 3)
	correct := 0
	for _, h := range test {
		if c.Predict(h.text).Lang == h.lang {
			correct++
		}
	}
	acc := float64(correct) / float64(len(test))
	if acc < 0.85 {
		t.Fatalf("held-out accuracy = %.2f (%d/%d), want >= 0.85", acc, correct, len(test))
	}
}

func TestPredictAllIsDistribution(t *testing.T) {
	c := New()
	ps := c.PredictAll("wireless mechanical keyboard with rgb lighting")
	total := 0.0
	for _, p := range ps {
		if p.Prob < 0 || p.Prob > 1 {
			t.Fatalf("probability out of range: %+v", p)
		}
		total += p.Prob
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("posterior sums to %v", total)
	}
	for i := 1; i < len(ps); i++ {
		if ps[i-1].Prob < ps[i].Prob {
			t.Fatal("PredictAll not sorted descending")
		}
	}
	if len(ps) != len(Languages()) {
		t.Fatalf("PredictAll returned %d languages, want %d", len(ps), len(Languages()))
	}
}

func TestIsEnglish(t *testing.T) {
	c := New()
	if !c.IsEnglish("brand new laptop with free shipping and one year warranty") {
		t.Error("English title misclassified")
	}
	if c.IsEnglish("neue festplatte mit kostenloser lieferung und voller garantie für ihren computer") {
		t.Error("German title classified as English")
	}
}

func TestEnglishTitleWithModelNumbers(t *testing.T) {
	// Product titles are full of codes; they must still lean English when
	// the surrounding words are English.
	c := New()
	title := "seagate barracuda st2000dm008 2tb internal hard drive for desktop"
	if !c.IsEnglish(title) {
		t.Errorf("model-number-laden English title misclassified: %v", c.PredictAll(title)[:3])
	}
}

func TestEmptyInput(t *testing.T) {
	c := New()
	p := c.Predict("")
	if p.Lang == "" {
		t.Fatal("Predict on empty input returned empty language")
	}
	// Uniform-ish posterior: confidence must be far below 1.
	if p.Prob > 0.9 {
		t.Fatalf("empty input over-confident: %+v", p)
	}
}

func TestSeedSentencesCopy(t *testing.T) {
	a := SeedSentences("en")
	if len(a) == 0 {
		t.Fatal("no English seeds")
	}
	a[0] = "mutated"
	b := SeedSentences("en")
	if b[0] == "mutated" {
		t.Fatal("SeedSentences leaks internal slice")
	}
	if SeedSentences("zz") != nil && len(SeedSentences("zz")) != 0 {
		t.Fatal("unknown language should return empty")
	}
}

func TestLanguagesSorted(t *testing.T) {
	langs := Languages()
	for i := 1; i < len(langs); i++ {
		if strings.Compare(langs[i-1], langs[i]) >= 0 {
			t.Fatalf("Languages not sorted: %v", langs)
		}
	}
	for _, l := range langs {
		if len(seedCorpora[l]) == 0 {
			t.Fatalf("language %s has no seed corpus", l)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := New()
	b := New()
	texts := []string{"free shipping today", "garantie du fabricant", "in den warenkorb"}
	for _, s := range texts {
		pa, pb := a.Predict(s), b.Predict(s)
		if pa.Lang != pb.Lang || math.Abs(pa.Prob-pb.Prob) > 1e-12 {
			t.Fatalf("classifiers differ on %q: %+v vs %+v", s, pa, pb)
		}
	}
}
