// Package svm implements a linear support vector machine trained with the
// Pegasos primal sub-gradient algorithm, over sparse feature vectors. It is
// the classifier behind the Word-(Co-)Occurrence baseline of §5.1
// (substituting scikit-learn's LinearSVC), with grid search over the
// regularization strength and a one-vs-rest wrapper for the multi-class
// formulation.
package svm

import (
	"math"
	"math/rand"

	"wdcproducts/internal/vector"
)

// Config holds the Pegasos hyperparameters.
type Config struct {
	// Lambda is the regularization strength (the grid-search knob).
	Lambda float64
	// Epochs is the number of passes over the training set.
	Epochs int
}

// DefaultConfig returns a reasonable starting configuration.
func DefaultConfig() Config { return Config{Lambda: 1e-4, Epochs: 12} }

// Model is a trained linear SVM.
type Model struct {
	W    []float32
	Bias float32
}

// Train fits a binary SVM on sparse features with labels y (true = +1).
// dim is the feature dimensionality.
func Train(xs []vector.Sparse, ys []bool, dim int, cfg Config, rng *rand.Rand) *Model {
	m := &Model{W: make([]float32, dim)}
	if len(xs) == 0 {
		return m
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 10
	}
	if cfg.Lambda <= 0 {
		cfg.Lambda = 1e-4
	}
	t := 1
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		order := rng.Perm(len(xs))
		for _, i := range order {
			eta := 1 / (cfg.Lambda * float64(t))
			t++
			y := -1.0
			if ys[i] {
				y = 1.0
			}
			margin := y * (m.score(xs[i]) + float64(m.Bias))
			// Shrink weights (regularization).
			shrink := float32(1 - eta*cfg.Lambda)
			if shrink < 0 {
				shrink = 0
			}
			vector.Scale(shrink, m.W)
			if margin < 1 {
				// Sub-gradient step on the hinge loss.
				step := float32(eta * y)
				for k, idx := range xs[i].Idx {
					m.W[idx] += step * xs[i].Val[k]
				}
				m.Bias += step * 0.01 // unregularized, small-lr bias
			}
		}
	}
	return m
}

func (m *Model) score(x vector.Sparse) float64 {
	var s float64
	for k, idx := range x.Idx {
		s += float64(m.W[idx]) * float64(x.Val[k])
	}
	return s
}

// Margin returns the signed distance-like score of x.
func (m *Model) Margin(x vector.Sparse) float64 {
	return m.score(x) + float64(m.Bias)
}

// Score returns a (0,1) confidence via a logistic squashing of the margin.
// It is monotone in the margin, which is all threshold selection needs.
func (m *Model) Score(x vector.Sparse) float64 {
	return 1 / (1 + math.Exp(-m.Margin(x)))
}

// Predict returns the class of x.
func (m *Model) Predict(x vector.Sparse) bool { return m.Margin(x) >= 0 }

// GridSearch trains one model per lambda and returns the model maximizing
// the score function on the validation set (the §5.1 "grid search over
// various parameter combinations").
func GridSearch(lambdas []float64, epochs int,
	trainX []vector.Sparse, trainY []bool, dim int,
	score func(*Model) float64, rng *rand.Rand) (*Model, float64) {
	var best *Model
	bestScore := math.Inf(-1)
	for _, lambda := range lambdas {
		m := Train(trainX, trainY, dim, Config{Lambda: lambda, Epochs: epochs}, rng)
		if s := score(m); s > bestScore {
			best, bestScore = m, s
		}
	}
	return best, bestScore
}

// Multiclass is a one-vs-rest ensemble of binary SVMs.
type Multiclass struct {
	Models []*Model
}

// TrainMulticlass fits one binary SVM per class (one-vs-rest).
func TrainMulticlass(xs []vector.Sparse, classes []int, numClasses, dim int,
	cfg Config, rng *rand.Rand) *Multiclass {
	mc := &Multiclass{Models: make([]*Model, numClasses)}
	ys := make([]bool, len(xs))
	for c := 0; c < numClasses; c++ {
		for i, cl := range classes {
			ys[i] = cl == c
		}
		mc.Models[c] = Train(xs, ys, dim, cfg, rng)
	}
	return mc
}

// Predict returns the class with the highest margin.
func (mc *Multiclass) Predict(x vector.Sparse) int {
	best, bestScore := 0, math.Inf(-1)
	for c, m := range mc.Models {
		if s := m.Margin(x); s > bestScore {
			best, bestScore = c, s
		}
	}
	return best
}
