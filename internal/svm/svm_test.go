package svm

import (
	"testing"

	"wdcproducts/internal/vector"
	"wdcproducts/internal/xrand"
)

// separableData builds a linearly separable sparse dataset: positives carry
// features in [0,10), negatives in [10,20).
func separableData(n int, rng interface{ Intn(int) int }) ([]vector.Sparse, []bool) {
	var xs []vector.Sparse
	var ys []bool
	for i := 0; i < n; i++ {
		pos := i%2 == 0
		base := 0
		if !pos {
			base = 10
		}
		ids := []int32{int32(base + rng.Intn(10)), int32(base + rng.Intn(10)), int32(base + rng.Intn(10))}
		xs = append(xs, vector.NewBinarySparse(ids))
		ys = append(ys, pos)
	}
	return xs, ys
}

func TestSeparable(t *testing.T) {
	rng := xrand.New(1).Stream("svm")
	xs, ys := separableData(200, rng)
	m := Train(xs, ys, 20, DefaultConfig(), rng)
	correct := 0
	for i := range xs {
		if m.Predict(xs[i]) == ys[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(xs)); acc < 0.97 {
		t.Fatalf("training accuracy = %.3f on separable data", acc)
	}
}

func TestScoreMonotoneInMargin(t *testing.T) {
	rng := xrand.New(2).Stream("svm")
	xs, ys := separableData(100, rng)
	m := Train(xs, ys, 20, DefaultConfig(), rng)
	for i := range xs {
		s := m.Score(xs[i])
		if s < 0 || s > 1 {
			t.Fatalf("Score out of range: %v", s)
		}
		if (m.Margin(xs[i]) >= 0) != (s >= 0.5) {
			t.Fatal("Score and Margin disagree on sign")
		}
	}
}

func TestEmptyTraining(t *testing.T) {
	m := Train(nil, nil, 5, DefaultConfig(), xrand.New(1).Stream("x"))
	if m.Margin(vector.NewBinarySparse([]int32{1})) != 0 {
		t.Fatal("empty-trained model should score 0")
	}
}

func TestGridSearchPicksBest(t *testing.T) {
	rng := xrand.New(3).Stream("svm")
	xs, ys := separableData(200, rng)
	valX, valY := separableData(60, rng)
	acc := func(m *Model) float64 {
		c := 0
		for i := range valX {
			if m.Predict(valX[i]) == valY[i] {
				c++
			}
		}
		return float64(c) / float64(len(valX))
	}
	m, score := GridSearch([]float64{1e-2, 1e-4, 1e-6}, 8, xs, ys, 20, acc, rng)
	if m == nil {
		t.Fatal("grid search returned nil")
	}
	if score < 0.95 {
		t.Fatalf("grid search best accuracy = %.3f", score)
	}
}

func TestMulticlass(t *testing.T) {
	rng := xrand.New(4).Stream("svm")
	// Three classes with disjoint feature blocks.
	var xs []vector.Sparse
	var cls []int
	for i := 0; i < 300; i++ {
		c := i % 3
		base := int32(c * 8)
		xs = append(xs, vector.NewBinarySparse([]int32{base + int32(rng.Intn(8)), base + int32(rng.Intn(8))}))
		cls = append(cls, c)
	}
	mc := TrainMulticlass(xs, cls, 3, 24, DefaultConfig(), rng)
	correct := 0
	for i := range xs {
		if mc.Predict(xs[i]) == cls[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(xs)); acc < 0.95 {
		t.Fatalf("multiclass accuracy = %.3f", acc)
	}
}

func TestDeterminism(t *testing.T) {
	train := func() *Model {
		rng := xrand.New(9).Stream("svm")
		xs, ys := separableData(100, rng)
		return Train(xs, ys, 20, DefaultConfig(), rng)
	}
	a, b := train(), train()
	for i := range a.W {
		if a.W[i] != b.W[i] {
			t.Fatalf("weights differ at %d", i)
		}
	}
}

func TestNoisyLabelsStillLearn(t *testing.T) {
	rng := xrand.New(5).Stream("svm")
	xs, ys := separableData(400, rng)
	// Flip 10% of labels.
	for i := 0; i < len(ys); i += 10 {
		ys[i] = !ys[i]
	}
	m := Train(xs, ys, 20, DefaultConfig(), rng)
	correct := 0
	for i := range xs {
		if i%10 == 0 {
			continue // skip flipped
		}
		if m.Predict(xs[i]) == ys[i] {
			correct++
		}
	}
	if acc := float64(correct) / (float64(len(xs)) * 0.9); acc < 0.9 {
		t.Fatalf("accuracy under label noise = %.3f", acc)
	}
}
