// Package forest implements CART decision trees and a random forest
// classifier (bootstrap aggregation with per-split feature subsampling).
// It is the classifier behind the Magellan baseline of §5.1, substituting
// scikit-learn's RandomForestClassifier.
package forest

import (
	"math"
	"math/rand"
	"sort"
)

// Config holds the forest hyperparameters.
type Config struct {
	Trees    int
	MaxDepth int
	// MinLeaf is the minimum number of samples in a leaf.
	MinLeaf int
	// FeatureFrac is the fraction of features considered per split; 0
	// selects the sqrt(d) heuristic.
	FeatureFrac float64
}

// DefaultConfig returns a configuration matched to Magellan-style feature
// vectors (a dozen dense similarity features).
func DefaultConfig() Config {
	return Config{Trees: 24, MaxDepth: 10, MinLeaf: 2}
}

type node struct {
	// Leaf payload.
	leaf bool
	prob float64 // P(positive)
	// Internal split.
	feature     int
	threshold   float64
	left, right *node
}

// Tree is a single CART classification tree.
type Tree struct {
	root *node
}

// Forest is a bagged ensemble of trees.
type Forest struct {
	trees []*Tree
}

// Train fits a random forest on dense features with binary labels.
func Train(xs [][]float64, ys []bool, cfg Config, rng *rand.Rand) *Forest {
	f := &Forest{}
	if len(xs) == 0 {
		return f
	}
	if cfg.Trees <= 0 {
		cfg.Trees = 16
	}
	if cfg.MaxDepth <= 0 {
		cfg.MaxDepth = 8
	}
	if cfg.MinLeaf <= 0 {
		cfg.MinLeaf = 1
	}
	dim := len(xs[0])
	nFeat := int(cfg.FeatureFrac * float64(dim))
	if cfg.FeatureFrac <= 0 {
		nFeat = int(math.Sqrt(float64(dim)) + 0.5)
	}
	if nFeat < 1 {
		nFeat = 1
	}
	if nFeat > dim {
		nFeat = dim
	}
	for t := 0; t < cfg.Trees; t++ {
		// Bootstrap sample.
		idx := make([]int, len(xs))
		for i := range idx {
			idx[i] = rng.Intn(len(xs))
		}
		tree := &Tree{}
		tree.root = buildNode(xs, ys, idx, cfg, nFeat, 0, rng)
		f.trees = append(f.trees, tree)
	}
	return f
}

func buildNode(xs [][]float64, ys []bool, idx []int, cfg Config, nFeat, depth int, rng *rand.Rand) *node {
	pos := 0
	for _, i := range idx {
		if ys[i] {
			pos++
		}
	}
	prob := float64(pos) / float64(len(idx))
	if depth >= cfg.MaxDepth || len(idx) < 2*cfg.MinLeaf || pos == 0 || pos == len(idx) {
		return &node{leaf: true, prob: prob}
	}
	dim := len(xs[0])
	// Feature subsample.
	feats := rng.Perm(dim)[:nFeat]
	bestGini := math.Inf(1)
	bestFeat, bestThresh := -1, 0.0
	values := make([]float64, 0, len(idx))
	for _, fi := range feats {
		values = values[:0]
		for _, i := range idx {
			values = append(values, xs[i][fi])
		}
		sort.Float64s(values)
		// Candidate thresholds: midpoints of up to 16 quantile cuts.
		for q := 1; q < 16; q++ {
			cut := values[q*len(values)/16]
			gini, ok := splitGini(xs, ys, idx, fi, cut, cfg.MinLeaf)
			if ok && gini < bestGini {
				bestGini, bestFeat, bestThresh = gini, fi, cut
			}
		}
	}
	if bestFeat < 0 {
		return &node{leaf: true, prob: prob}
	}
	var leftIdx, rightIdx []int
	for _, i := range idx {
		if xs[i][bestFeat] <= bestThresh {
			leftIdx = append(leftIdx, i)
		} else {
			rightIdx = append(rightIdx, i)
		}
	}
	if len(leftIdx) < cfg.MinLeaf || len(rightIdx) < cfg.MinLeaf {
		return &node{leaf: true, prob: prob}
	}
	return &node{
		feature:   bestFeat,
		threshold: bestThresh,
		left:      buildNode(xs, ys, leftIdx, cfg, nFeat, depth+1, rng),
		right:     buildNode(xs, ys, rightIdx, cfg, nFeat, depth+1, rng),
	}
}

// splitGini computes the weighted Gini impurity of splitting idx at
// feature <= threshold. ok is false for degenerate splits.
func splitGini(xs [][]float64, ys []bool, idx []int, feat int, thresh float64, minLeaf int) (float64, bool) {
	var lN, lPos, rN, rPos int
	for _, i := range idx {
		if xs[i][feat] <= thresh {
			lN++
			if ys[i] {
				lPos++
			}
		} else {
			rN++
			if ys[i] {
				rPos++
			}
		}
	}
	if lN < minLeaf || rN < minLeaf {
		return 0, false
	}
	gini := func(n, pos int) float64 {
		p := float64(pos) / float64(n)
		return 2 * p * (1 - p)
	}
	total := float64(lN + rN)
	return float64(lN)/total*gini(lN, lPos) + float64(rN)/total*gini(rN, rPos), true
}

// Prob returns the forest's positive-class probability: the mean of the
// trees' leaf probabilities.
func (f *Forest) Prob(x []float64) float64 {
	if len(f.trees) == 0 {
		return 0
	}
	sum := 0.0
	for _, t := range f.trees {
		sum += t.prob(x)
	}
	return sum / float64(len(f.trees))
}

// Predict returns the majority-probability class.
func (f *Forest) Predict(x []float64) bool { return f.Prob(x) >= 0.5 }

// NumTrees returns the ensemble size.
func (f *Forest) NumTrees() int { return len(f.trees) }

func (t *Tree) prob(x []float64) float64 {
	n := t.root
	for !n.leaf {
		if x[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.prob
}

// Depth returns the maximum depth of the tree, for tests and diagnostics.
func (t *Tree) Depth() int { return depthOf(t.root) }

func depthOf(n *node) int {
	if n == nil || n.leaf {
		return 0
	}
	l, r := depthOf(n.left), depthOf(n.right)
	if l > r {
		return l + 1
	}
	return r + 1
}
