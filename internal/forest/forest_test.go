package forest

import (
	"math/rand"
	"testing"

	"wdcproducts/internal/xrand"
)

// xorData is not linearly separable; trees must handle it.
func xorData(n int, rng *rand.Rand) ([][]float64, []bool) {
	var xs [][]float64
	var ys []bool
	for i := 0; i < n; i++ {
		a := rng.Float64()
		b := rng.Float64()
		xs = append(xs, []float64{a, b, rng.Float64() * 0.01})
		ys = append(ys, (a > 0.5) != (b > 0.5))
	}
	return xs, ys
}

func TestXORLearnable(t *testing.T) {
	rng := xrand.New(1).Stream("forest")
	xs, ys := xorData(600, rng)
	f := Train(xs, ys, Config{Trees: 20, MaxDepth: 8, MinLeaf: 2, FeatureFrac: 1.0}, rng)
	correct := 0
	for i := range xs {
		if f.Predict(xs[i]) == ys[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(xs)); acc < 0.9 {
		t.Fatalf("XOR training accuracy = %.3f", acc)
	}
}

func TestGeneralization(t *testing.T) {
	rng := xrand.New(2).Stream("forest")
	xs, ys := xorData(600, rng)
	f := Train(xs, ys, DefaultConfig(), rng)
	testX, testY := xorData(200, rng)
	correct := 0
	for i := range testX {
		if f.Predict(testX[i]) == testY[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(testX)); acc < 0.8 {
		t.Fatalf("held-out accuracy = %.3f", acc)
	}
}

func TestProbRange(t *testing.T) {
	rng := xrand.New(3).Stream("forest")
	xs, ys := xorData(200, rng)
	f := Train(xs, ys, DefaultConfig(), rng)
	for i := range xs {
		p := f.Prob(xs[i])
		if p < 0 || p > 1 {
			t.Fatalf("probability out of range: %v", p)
		}
	}
}

func TestPureLabels(t *testing.T) {
	rng := xrand.New(4).Stream("forest")
	xs := [][]float64{{1}, {2}, {3}, {4}}
	ys := []bool{true, true, true, true}
	f := Train(xs, ys, DefaultConfig(), rng)
	if p := f.Prob([]float64{2.5}); p != 1 {
		t.Fatalf("pure-positive forest prob = %v", p)
	}
}

func TestEmptyTraining(t *testing.T) {
	f := Train(nil, nil, DefaultConfig(), xrand.New(1).Stream("f"))
	if f.NumTrees() != 0 {
		t.Fatal("trees grown from empty data")
	}
	if p := f.Prob([]float64{1}); p != 0 {
		t.Fatalf("empty forest prob = %v", p)
	}
}

func TestDepthBounded(t *testing.T) {
	rng := xrand.New(5).Stream("forest")
	xs, ys := xorData(500, rng)
	cfg := Config{Trees: 5, MaxDepth: 4, MinLeaf: 1, FeatureFrac: 1}
	f := Train(xs, ys, cfg, rng)
	for i, tree := range f.trees {
		if d := tree.Depth(); d > cfg.MaxDepth {
			t.Fatalf("tree %d depth %d exceeds max %d", i, d, cfg.MaxDepth)
		}
	}
}

func TestMinLeafRespected(t *testing.T) {
	rng := xrand.New(6).Stream("forest")
	xs, ys := xorData(100, rng)
	f := Train(xs, ys, Config{Trees: 3, MaxDepth: 20, MinLeaf: 30, FeatureFrac: 1}, rng)
	// With a huge MinLeaf, trees stay shallow.
	for _, tree := range f.trees {
		if tree.Depth() > 3 {
			t.Fatalf("MinLeaf not limiting growth: depth %d", tree.Depth())
		}
	}
}

func TestDeterminism(t *testing.T) {
	build := func() *Forest {
		rng := xrand.New(7).Stream("forest")
		xs, ys := xorData(200, rng)
		return Train(xs, ys, DefaultConfig(), rng)
	}
	a, b := build(), build()
	probe := []float64{0.3, 0.7, 0.0}
	if a.Prob(probe) != b.Prob(probe) {
		t.Fatal("forest training not deterministic")
	}
}

func TestBaggingDiversity(t *testing.T) {
	rng := xrand.New(8).Stream("forest")
	xs, ys := xorData(300, rng)
	f := Train(xs, ys, Config{Trees: 10, MaxDepth: 6, MinLeaf: 2, FeatureFrac: 0.5}, rng)
	// Trees should not all be identical: check that at least two trees
	// disagree on some input.
	diverse := false
	for i := 0; i < 50 && !diverse; i++ {
		x := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		first := f.trees[0].prob(x)
		for _, tree := range f.trees[1:] {
			if tree.prob(x) != first {
				diverse = true
				break
			}
		}
	}
	if !diverse {
		t.Fatal("all trees identical; bagging broken")
	}
}
