package dbscan

import (
	"testing"
	"testing/quick"

	"wdcproducts/internal/vector"
)

// vec builds a binary sparse vector over the given token ids.
func vec(ids ...int32) vector.Sparse { return vector.NewBinarySparse(ids) }

func TestTwoCleanGroups(t *testing.T) {
	points := []vector.Sparse{
		vec(1, 2, 3, 4), vec(1, 2, 3, 5), vec(1, 2, 3, 6), // group A
		vec(10, 11, 12, 13), vec(10, 11, 12, 14), // group B
	}
	labels, err := Cluster(points, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if labels[0] != labels[1] || labels[1] != labels[2] {
		t.Fatalf("group A split: %v", labels)
	}
	if labels[3] != labels[4] {
		t.Fatalf("group B split: %v", labels)
	}
	if labels[0] == labels[3] {
		t.Fatalf("groups merged: %v", labels)
	}
}

func TestChainLinkage(t *testing.T) {
	// min_samples=1 DBSCAN chains through transitive neighbours: a-b close,
	// b-c close, a-c far -> all one group.
	points := []vector.Sparse{
		vec(1, 2, 3, 4),
		vec(3, 4, 5, 6),
		vec(5, 6, 7, 8),
	}
	labels, err := Cluster(points, Config{Eps: 0.6, MinSamples: 1})
	if err != nil {
		t.Fatal(err)
	}
	if labels[0] != labels[2] {
		t.Fatalf("chain not linked: %v", labels)
	}
	// Direct distance a-c is 1.0 (> eps), confirming it's transitive.
	if d := 1 - points[0].Cosine(points[2]); d <= 0.6 {
		t.Fatalf("test premise broken: d(a,c) = %v", d)
	}
}

func TestDisjointVectorsNeverMerge(t *testing.T) {
	points := []vector.Sparse{vec(1, 2), vec(3, 4), vec(5, 6)}
	labels, err := Cluster(points, Config{Eps: 0.99, MinSamples: 1})
	if err != nil {
		t.Fatal(err)
	}
	if labels[0] == labels[1] || labels[1] == labels[2] || labels[0] == labels[2] {
		t.Fatalf("disjoint vectors merged: %v", labels)
	}
}

func TestEpsZeroOnlyExactDuplicates(t *testing.T) {
	points := []vector.Sparse{vec(1, 2, 3), vec(1, 2, 3), vec(1, 2, 4)}
	labels, err := Cluster(points, Config{Eps: 0, MinSamples: 1})
	if err != nil {
		t.Fatal(err)
	}
	if labels[0] != labels[1] {
		t.Fatalf("identical vectors split: %v", labels)
	}
	if labels[0] == labels[2] {
		t.Fatalf("near-duplicates merged at eps=0: %v", labels)
	}
}

func TestMinSamplesNoise(t *testing.T) {
	// A lone point far from a dense blob becomes noise when MinSamples=3.
	points := []vector.Sparse{
		vec(1, 2, 3), vec(1, 2, 4), vec(1, 3, 4), vec(2, 3, 4), // dense blob
		vec(50, 51, 52), // isolated
	}
	labels, err := Cluster(points, Config{Eps: 0.4, MinSamples: 3})
	if err != nil {
		t.Fatal(err)
	}
	if labels[4] != Noise {
		t.Fatalf("isolated point not noise: %v", labels)
	}
	for i := 0; i < 4; i++ {
		if labels[i] == Noise {
			t.Fatalf("blob point %d marked noise: %v", i, labels)
		}
	}
}

func TestBorderPointAttachment(t *testing.T) {
	// Classic DBSCAN: border points join the cluster of a core neighbour.
	points := []vector.Sparse{
		vec(1, 2, 3, 4), vec(1, 2, 3, 5), vec(1, 2, 3, 6), vec(1, 2, 3, 7), // core region
		vec(1, 2, 8, 9), // border: near cores but itself sparse-neighboured
	}
	labels, err := Cluster(points, Config{Eps: 0.5, MinSamples: 4})
	if err != nil {
		t.Fatal(err)
	}
	if labels[4] == Noise {
		t.Skipf("border point classified noise under these params: %v", labels)
	}
	if labels[4] != labels[0] {
		t.Fatalf("border point in wrong cluster: %v", labels)
	}
}

func TestInvalidEps(t *testing.T) {
	if _, err := Cluster(nil, Config{Eps: 1.5}); err == nil {
		t.Fatal("eps > 1 accepted")
	}
	if _, err := Cluster(nil, Config{Eps: -0.1}); err == nil {
		t.Fatal("negative eps accepted")
	}
}

func TestEmptyInput(t *testing.T) {
	labels, err := Cluster(nil, DefaultConfig())
	if err != nil || len(labels) != 0 {
		t.Fatalf("empty input: %v, %v", labels, err)
	}
}

func TestGroups(t *testing.T) {
	g := Groups([]int{0, 1, 0, Noise, 1})
	if len(g) != 2 {
		t.Fatalf("Groups = %v", g)
	}
	if len(g[0]) != 2 || len(g[1]) != 2 {
		t.Fatalf("Groups sizes = %v", g)
	}
	if _, ok := g[Noise]; ok {
		t.Fatal("noise label appeared in Groups")
	}
}

func TestDeterminism(t *testing.T) {
	points := []vector.Sparse{
		vec(1, 2, 3), vec(1, 2, 4), vec(9, 10, 11), vec(9, 10, 12), vec(20, 21),
	}
	a, _ := Cluster(points, DefaultConfig())
	b, _ := Cluster(points, DefaultConfig())
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("labels differ: %v vs %v", a, b)
		}
	}
	// Labels are dense starting at 0.
	maxLabel := 0
	for _, l := range a {
		if l > maxLabel {
			maxLabel = l
		}
	}
	present := make([]bool, maxLabel+1)
	for _, l := range a {
		present[l] = true
	}
	for l, ok := range present {
		if !ok {
			t.Fatalf("label %d skipped: %v", l, a)
		}
	}
}

// Property: with min_samples=1, points in the same component are connected
// by a chain of eps-neighbours, and every point gets a non-noise label.
func TestComponentProperty(t *testing.T) {
	f := func(seeds []uint8) bool {
		if len(seeds) == 0 || len(seeds) > 24 {
			return true
		}
		points := make([]vector.Sparse, len(seeds))
		for i, s := range seeds {
			// Small id space forces overlaps.
			points[i] = vec(int32(s%7), int32(s/7%7)+7, int32(s/49%5)+14)
		}
		eps := 0.35
		labels, err := Cluster(points, Config{Eps: eps, MinSamples: 1})
		if err != nil {
			return false
		}
		for _, l := range labels {
			if l == Noise {
				return false
			}
		}
		// Different labels => direct distance must exceed eps (no missed
		// direct link).
		for i := range points {
			for j := i + 1; j < len(points); j++ {
				if labels[i] != labels[j] && 1-points[i].Cosine(points[j]) <= eps {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
