// Package dbscan implements the density-based clustering used by the §3.3
// grouping step (substituting scikit-learn's DBSCAN with eps=0.35 and
// min_samples=1 over binary word-occurrence vectors).
//
// The implementation supports general min_samples; with min_samples <= 1
// every point is a core point and DBSCAN reduces exactly to the connected
// components of the eps-neighbourhood graph, which is computed with
// union-find. Neighbour candidates come from an inverted index over the
// non-zero dimensions, so only vector pairs sharing at least one token are
// ever compared — with cosine distance, disjoint vectors are at distance 1
// and can never be neighbours for eps < 1.
package dbscan

import (
	"fmt"

	"wdcproducts/internal/vector"
)

// Noise is the label assigned to points in no cluster (only possible when
// MinSamples > 1).
const Noise = -1

// Config holds the clustering parameters.
type Config struct {
	// Eps is the maximum cosine distance (1 - cosine similarity) for two
	// points to be neighbours.
	Eps float64
	// MinSamples is the core-point threshold, counting the point itself
	// (scikit-learn semantics).
	MinSamples int
}

// DefaultConfig returns the paper's parameters (§3.3).
func DefaultConfig() Config { return Config{Eps: 0.35, MinSamples: 1} }

// Cluster assigns a group label to every input vector. Labels are dense
// integers starting at 0; points labelled Noise belong to no group.
func Cluster(points []vector.Sparse, cfg Config) ([]int, error) {
	if cfg.Eps < 0 || cfg.Eps > 1 {
		return nil, fmt.Errorf("dbscan: eps %v outside [0,1] for cosine distance", cfg.Eps)
	}
	if cfg.MinSamples < 1 {
		cfg.MinSamples = 1
	}
	if cfg.MinSamples == 1 {
		return componentCluster(points, cfg.Eps), nil
	}
	return classicDBSCAN(points, cfg), nil
}

// invertedIndex maps dimension id -> point ids containing it.
func invertedIndex(points []vector.Sparse) map[int32][]int32 {
	idx := make(map[int32][]int32)
	for i, p := range points {
		for _, d := range p.Idx {
			idx[d] = append(idx[d], int32(i))
		}
	}
	return idx
}

// neighbors returns all points within eps of point i (excluding i), using
// the inverted index for candidate generation.
func neighbors(points []vector.Sparse, inv map[int32][]int32, i int, eps float64) []int {
	seen := map[int32]bool{}
	var out []int
	pi := points[i]
	for _, d := range pi.Idx {
		for _, j := range inv[d] {
			if int(j) == i || seen[j] {
				continue
			}
			seen[j] = true
			if 1-pi.Cosine(points[j]) <= eps {
				out = append(out, int(j))
			}
		}
	}
	return out
}

// componentCluster handles the min_samples=1 case via union-find.
func componentCluster(points []vector.Sparse, eps float64) []int {
	parent := make([]int, len(points))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			if ra < rb {
				parent[rb] = ra
			} else {
				parent[ra] = rb
			}
		}
	}
	inv := invertedIndex(points)
	for i := range points {
		pi := points[i]
		checked := map[int32]bool{}
		for _, d := range pi.Idx {
			for _, j := range inv[d] {
				if int(j) <= i || checked[j] {
					continue
				}
				checked[j] = true
				if 1-pi.Cosine(points[int(j)]) <= eps {
					union(i, int(j))
				}
			}
		}
	}
	// Relabel roots densely in first-appearance order for determinism.
	labels := make([]int, len(points))
	next := 0
	rootLabel := map[int]int{}
	for i := range points {
		r := find(i)
		l, ok := rootLabel[r]
		if !ok {
			l = next
			rootLabel[r] = l
			next++
		}
		labels[i] = l
	}
	return labels
}

// classicDBSCAN is the standard expansion algorithm for MinSamples > 1.
func classicDBSCAN(points []vector.Sparse, cfg Config) []int {
	labels := make([]int, len(points))
	for i := range labels {
		labels[i] = -2 // unvisited
	}
	inv := invertedIndex(points)
	clusterID := 0
	for i := range points {
		if labels[i] != -2 {
			continue
		}
		nbrs := neighbors(points, inv, i, cfg.Eps)
		if len(nbrs)+1 < cfg.MinSamples {
			labels[i] = Noise
			continue
		}
		labels[i] = clusterID
		queue := append([]int(nil), nbrs...)
		for qi := 0; qi < len(queue); qi++ {
			j := queue[qi]
			if labels[j] == Noise {
				labels[j] = clusterID // border point
			}
			if labels[j] != -2 {
				continue
			}
			labels[j] = clusterID
			jn := neighbors(points, inv, j, cfg.Eps)
			if len(jn)+1 >= cfg.MinSamples {
				queue = append(queue, jn...)
			}
		}
		clusterID++
	}
	return labels
}

// Groups inverts a label slice into label -> member indices, skipping noise.
func Groups(labels []int) map[int][]int {
	out := make(map[int][]int)
	for i, l := range labels {
		if l == Noise {
			continue
		}
		out[l] = append(out[l], i)
	}
	return out
}
