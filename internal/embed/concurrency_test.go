package embed

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"wdcproducts/internal/xrand"
)

// TestCachedMetricConcurrent hammers one CachedMetric from many
// goroutines over an overlapping title set and requires every observed
// similarity to equal the uncached Metric value exactly. Run with -race:
// the memo map is the shared state the parallel pipeline leans on.
func TestCachedMetricConcurrent(t *testing.T) {
	titles := make([]string, 12)
	for i := range titles {
		titles[i] = fmt.Sprintf("globex drive %d ssd 1tb nvme gen%d", i, i%3)
	}
	cfg := DefaultConfig()
	cfg.Epochs = 1
	m := Train(titles, cfg, xrand.New(7).Stream("cached-metric"))

	want := make(map[[2]int]float64)
	plain := m.Metric()
	for a := range titles {
		for b := range titles {
			want[[2]int{a, b}] = plain.Sim(titles[a], titles[b])
		}
	}

	cached := m.CachedMetric()
	const goroutines = 16
	errs := make(chan error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for k := 0; k < 4*len(titles)*len(titles); k++ {
				a := (g + k) % len(titles)
				b := (g*3 + k*7) % len(titles)
				got := cached.Sim(titles[a], titles[b])
				if got != want[[2]int{a, b}] {
					errs <- fmt.Errorf("sim(%d,%d) = %v, want %v", a, b, got, want[[2]int{a, b}])
					return
				}
			}
			errs <- nil
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestModelConcurrentReads covers the trained model's read paths
// (Encode, WordVec, TokenIDF, Similarity) under concurrency — the shared
// encoder every experiment worker reads through matchers.Data.
func TestModelConcurrentReads(t *testing.T) {
	titles := []string{
		"initech keyboard k120 wired",
		"initech keyboard k380 wireless multi device",
		"hooli monitor 27in 4k uhd",
	}
	cfg := DefaultConfig()
	cfg.Epochs = 1
	m := Train(titles, cfg, xrand.New(9).Stream("reads"))

	wantEnc := m.Encode(titles[0])
	wantSim := m.Similarity(titles[0], titles[1])
	wantIDF := m.TokenIDF("keyboard")

	var wg sync.WaitGroup
	errs := make(chan error, 12)
	for g := 0; g < 12; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 200; k++ {
				enc := m.Encode(titles[0])
				for d, v := range enc {
					if v != wantEnc[d] {
						errs <- fmt.Errorf("Encode diverged at dim %d", d)
						return
					}
				}
				if s := m.Similarity(titles[0], titles[1]); s != wantSim || math.IsNaN(s) {
					errs <- fmt.Errorf("Similarity diverged: %v vs %v", s, wantSim)
					return
				}
				if idf := m.TokenIDF("keyboard"); idf != wantIDF {
					errs <- fmt.Errorf("TokenIDF diverged: %v vs %v", idf, wantIDF)
					return
				}
			}
			errs <- nil
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}
