package embed

import (
	"testing"

	"wdcproducts/internal/xrand"
)

func TestFingerprint(t *testing.T) {
	texts := []string{"acme widget pro 3000", "acme widget pro", "bolt cutter xl", "bolt cutter"}
	cfg := DefaultConfig()
	cfg.Epochs = 1
	cfg.Buckets = 1 << 8

	a := Train(texts, cfg, xrand.New(11).Stream("embed"))
	b := Train(texts, cfg, xrand.New(11).Stream("embed"))
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("identical trainings produced different fingerprints")
	}
	if a.Fingerprint() != a.Fingerprint() {
		t.Fatal("fingerprint not stable across calls")
	}
	c := Train(texts, cfg, xrand.New(12).Stream("embed"))
	if a.Fingerprint() == c.Fingerprint() {
		t.Fatal("differently seeded trainings fingerprint equal")
	}
	cfg2 := cfg
	cfg2.Window = cfg.Window + 1
	d := Train(texts, cfg2, xrand.New(11).Stream("embed"))
	if a.Fingerprint() == d.Fingerprint() {
		t.Fatal("different configs fingerprint equal")
	}
}
