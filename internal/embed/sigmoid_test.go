package embed

import (
	"math"
	"testing"
)

// TestSigmoidTableAccuracy sweeps the table-interpolated sigmoid against the
// exact logistic across and beyond the clamped range.
func TestSigmoidTableAccuracy(t *testing.T) {
	const maxErr = 2e-5
	for x := -10.0; x <= 10.0; x += 0.001 {
		got, want := sigmoid(x), sigmoidExact(x)
		if err := math.Abs(got - want); err > maxErr {
			t.Fatalf("sigmoid(%v) = %v, exact %v, err %v > %v", x, got, want, err, maxErr)
		}
	}
}

// TestSigmoidClampingSemantics pins the exact clamp values at the ±8
// boundary, which must match the pre-table implementation bit for bit.
func TestSigmoidClampingSemantics(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{8.0001, 1},
		{100, 1},
		{math.Inf(1), 1},
		{-8.0001, 0},
		{-100, 0},
		{math.Inf(-1), 0},
	}
	for _, c := range cases {
		if got := sigmoid(c.x); got != c.want {
			t.Errorf("sigmoid(%v) = %v, want exactly %v", c.x, got, c.want)
		}
	}
	// NaN propagates like the math.Exp version instead of panicking on the
	// table index.
	if got := sigmoid(math.NaN()); !math.IsNaN(got) {
		t.Errorf("sigmoid(NaN) = %v, want NaN", got)
	}
	// Range and monotonicity inside the clamp window.
	prev := -1.0
	for x := -8.0; x <= 8.0; x += 0.01 {
		s := sigmoid(x)
		if s < 0 || s > 1 {
			t.Fatalf("sigmoid(%v) = %v out of [0,1]", x, s)
		}
		if s < prev {
			t.Fatalf("sigmoid not monotonic at %v: %v < %v", x, s, prev)
		}
		prev = s
	}
	if s := sigmoid(0); math.Abs(s-0.5) > 1e-9 {
		t.Errorf("sigmoid(0) = %v, want 0.5", s)
	}
}

var sinkF float64

// BenchmarkSigmoidTable / BenchmarkSigmoidExact compare the lookup table
// against the math.Exp version over the argument range the SGNS loop sees.
func BenchmarkSigmoidTable(b *testing.B) {
	var s float64
	for i := 0; i < b.N; i++ {
		x := float64(i%1600)/100 - 8
		s += sigmoid(x)
	}
	sinkF = s
}

func BenchmarkSigmoidExact(b *testing.B) {
	var s float64
	for i := 0; i < b.N; i++ {
		x := float64(i%1600)/100 - 8
		s += sigmoidExact(x)
	}
	sinkF = s
}
