// Package embed provides trainable word embeddings used as the learned
// similarity metric of §3.4 (replacing fastText trained on the Leipzig
// product benchmark titles) and as the text encoder of the neural matcher
// substitutes.
//
// The model is skip-gram with negative sampling (SGNS). Like fastText, each
// word vector is the sum of a word-identity vector and hashed character
// n-gram vectors, so unseen words still receive meaningful representations
// from their subwords — the property that makes the embedding metric behave
// differently from the symbolic token-set metrics during corner-case
// selection.
package embed

import (
	"math"
	"math/rand"
	"sort"
	"sync"

	"wdcproducts/internal/simlib"
	"wdcproducts/internal/textutil"
	"wdcproducts/internal/vector"
)

// Config controls embedding training.
type Config struct {
	Dim          int     // embedding dimension
	Window       int     // skip-gram context window
	Negatives    int     // negative samples per positive
	Epochs       int     // passes over the corpus
	LearningRate float64 // initial SGD learning rate (linearly decayed)
	MinCount     int     // discard words rarer than this
	Buckets      int     // hash buckets for char n-grams
	MinN, MaxN   int     // char n-gram lengths
}

// DefaultConfig returns a configuration sized for single-CPU training on
// tens of thousands of short titles.
func DefaultConfig() Config {
	return Config{
		Dim:          32,
		Window:       3,
		Negatives:    4,
		Epochs:       3,
		LearningRate: 0.05,
		MinCount:     2,
		Buckets:      1 << 15,
		MinN:         3,
		MaxN:         4,
	}
}

// Model is a trained embedding model. The vector tables are stored as
// contiguous row-major matrices (row length cfg.Dim) rather than slices of
// slices: one allocation each, cache-friendly row access, and no pointer
// chasing in the SGNS inner loop.
type Model struct {
	cfg   Config
	vocab map[string]int
	words []string
	in    []float32 // input vectors (word identity), len(words) x Dim
	grams []float32 // hashed subword vectors, Buckets x Dim
	out   []float32 // output (context) vectors, len(words) x Dim
	// wordBuckets holds each vocabulary word's subword bucket ids, computed
	// once at vocabulary build instead of re-hashing the word's n-grams on
	// every SGNS step.
	wordBuckets [][]int32
	counts      []int
	totalCount  int
	negTbl      []int32
	trained     bool

	// Fingerprint memoization (content hashing the vector tables once).
	fpOnce sync.Once
	fp     uint64
}

// inVec/outVec/gramVec return the matrix row of a word or bucket id.
func (m *Model) inVec(i int) []float32 {
	d := m.cfg.Dim
	return m.in[i*d : i*d+d]
}

func (m *Model) outVec(i int) []float32 {
	d := m.cfg.Dim
	return m.out[i*d : i*d+d]
}

func (m *Model) gramVec(i int) []float32 {
	d := m.cfg.Dim
	return m.grams[i*d : i*d+d]
}

// Train fits an embedding model on the given texts (titles). The rng drives
// initialization, shuffling and negative sampling so training is fully
// deterministic for a fixed stream.
func Train(texts []string, cfg Config, rng *rand.Rand) *Model {
	m := &Model{cfg: cfg, vocab: make(map[string]int)}
	// Build vocabulary.
	freq := make(map[string]int)
	corpus := make([][]string, 0, len(texts))
	for _, t := range texts {
		toks := textutil.Tokenize(t)
		corpus = append(corpus, toks)
		for _, w := range toks {
			freq[w]++
		}
	}
	for w, n := range freq {
		if n >= cfg.MinCount {
			m.vocab[w] = 0 // assigned below after sorting for determinism
		}
	}
	m.words = make([]string, 0, len(m.vocab))
	for w := range m.vocab {
		m.words = append(m.words, w)
	}
	sort.Strings(m.words)
	for i, w := range m.words {
		m.vocab[w] = i
	}
	m.counts = make([]int, len(m.words))
	for i, w := range m.words {
		m.counts[i] = freq[w]
		m.totalCount += freq[w]
	}
	// Precompute each word's subword buckets once; the SGNS loop hits them
	// on every step.
	m.wordBuckets = make([][]int32, len(m.words))
	for i, w := range m.words {
		m.wordBuckets[i] = m.gramBuckets(w)
	}
	// Initialize vectors. The rng fill order (row by row) matches the
	// previous slice-of-slices layout, so training stays byte-identical.
	initVec := func(n int, scale float32) []float32 {
		vs := make([]float32, n*cfg.Dim)
		for i := range vs {
			vs[i] = (rng.Float32() - 0.5) * scale / float32(cfg.Dim)
		}
		return vs
	}
	m.in = initVec(len(m.words), 2)
	m.grams = initVec(cfg.Buckets, 2)
	m.out = make([]float32, len(m.words)*cfg.Dim)
	m.buildNegativeTable()
	m.train(corpus, rng)
	m.trained = true
	return m
}

// buildNegativeTable builds the unigram^0.75 sampling table.
func (m *Model) buildNegativeTable() {
	const tableSize = 1 << 17
	if len(m.words) == 0 {
		return
	}
	total := 0.0
	pows := make([]float64, len(m.counts))
	for i, c := range m.counts {
		pows[i] = math.Pow(float64(c), 0.75)
		total += pows[i]
	}
	m.negTbl = make([]int32, tableSize)
	idx, acc := 0, pows[0]/total
	for i := range m.negTbl {
		p := float64(i) / tableSize
		for p > acc && idx < len(pows)-1 {
			idx++
			acc += pows[idx] / total
		}
		m.negTbl[i] = int32(idx)
	}
}

// sigmoidTableSize is the number of lookup entries spanning [-8, 8]. At 512
// entries the linear interpolation error stays below 2e-5, far under the SGD
// noise floor, while removing math.Exp from the innermost training step.
const sigmoidTableSize = 512

// sigmoidTable holds sigmoidExact sampled at the 512 interval endpoints
// (index i maps to x = -8 + 16*i/(sigmoidTableSize-1)).
var sigmoidTable = func() [sigmoidTableSize]float64 {
	var t [sigmoidTableSize]float64
	for i := range t {
		x := -8 + 16*float64(i)/float64(sigmoidTableSize-1)
		t[i] = sigmoidExact(x)
	}
	return t
}()

// sigmoid is the table-interpolated logistic function used by the SGNS
// training loop. Clamping matches sigmoidExact: exactly 1 above 8, exactly
// 0 below -8, and NaN propagated (a diverged dot product must degrade the
// model the way the math.Exp version did, not panic on table indexing).
func sigmoid(x float64) float64 {
	if x > 8 {
		return 1
	}
	if x < -8 {
		return 0
	}
	if math.IsNaN(x) {
		return x
	}
	pos := (x + 8) / 16 * float64(sigmoidTableSize-1)
	i := int(pos)
	if i >= sigmoidTableSize-1 {
		return sigmoidTable[sigmoidTableSize-1]
	}
	frac := pos - float64(i)
	return sigmoidTable[i] + frac*(sigmoidTable[i+1]-sigmoidTable[i])
}

// sigmoidExact is the reference logistic function the lookup table samples;
// kept for the accuracy test and the speed benchmark.
func sigmoidExact(x float64) float64 {
	if x > 8 {
		return 1
	}
	if x < -8 {
		return 0
	}
	return 1 / (1 + math.Exp(-x))
}

// train runs SGNS over the corpus.
func (m *Model) train(corpus [][]string, rng *rand.Rand) {
	if len(m.words) == 0 {
		return
	}
	// Pre-encode corpus to vocab ids.
	encoded := make([][]int32, 0, len(corpus))
	for _, toks := range corpus {
		row := make([]int32, 0, len(toks))
		for _, w := range toks {
			if id, ok := m.vocab[w]; ok {
				row = append(row, int32(id))
			}
		}
		if len(row) >= 2 {
			encoded = append(encoded, row)
		}
	}
	if len(encoded) == 0 {
		return
	}
	steps := 0
	totalSteps := m.cfg.Epochs * len(encoded)
	grad := make([]float32, m.cfg.Dim)
	cvec := make([]float32, m.cfg.Dim)
	for epoch := 0; epoch < m.cfg.Epochs; epoch++ {
		order := rng.Perm(len(encoded))
		for _, ri := range order {
			row := encoded[ri]
			lr := m.cfg.LearningRate * (1 - float64(steps)/float64(totalSteps+1))
			if lr < m.cfg.LearningRate*0.05 {
				lr = m.cfg.LearningRate * 0.05
			}
			steps++
			for pos, center := range row {
				lo := pos - m.cfg.Window
				if lo < 0 {
					lo = 0
				}
				hi := pos + m.cfg.Window
				if hi >= len(row) {
					hi = len(row) - 1
				}
				m.composeInto(cvec, int(center))
				for cpos := lo; cpos <= hi; cpos++ {
					if cpos == pos {
						continue
					}
					for d := range grad {
						grad[d] = 0
					}
					// Positive example.
					m.sgnsStep(cvec, int(row[cpos]), 1, lr, grad)
					// Negatives.
					for k := 0; k < m.cfg.Negatives; k++ {
						neg := m.negTbl[rng.Intn(len(m.negTbl))]
						if neg == row[cpos] {
							continue
						}
						m.sgnsStep(cvec, int(neg), 0, lr, grad)
					}
					// Propagate accumulated input-side gradient to the word
					// vector and its subword buckets.
					m.applyInputGrad(int(center), grad)
				}
			}
		}
	}
	m.trained = true
}

// sgnsStep performs one logistic step against output vector of word o with
// target t (1 positive, 0 negative), accumulating the input-side gradient.
func (m *Model) sgnsStep(cvec []float32, o int, t float64, lr float64, grad []float32) {
	ovec := m.outVec(o)
	g := (t - sigmoid(vector.Dot(cvec, ovec))) * lr
	gf := float32(g)
	for d := range cvec {
		grad[d] += gf * ovec[d]
		ovec[d] += gf * cvec[d]
	}
}

// composeInto writes the current composed (word + subword mean) vector of a
// word id into dst, which must have length Dim.
func (m *Model) composeInto(dst []float32, id int) {
	copy(dst, m.inVec(id))
	buckets := m.wordBuckets[id]
	if len(buckets) == 0 {
		return
	}
	inv := 1 / float32(len(buckets))
	for _, b := range buckets {
		vector.Axpy(inv, m.gramVec(int(b)), dst)
	}
}

// applyInputGrad distributes the input-side gradient across the word vector
// and its subword buckets (fastText-style shared update).
func (m *Model) applyInputGrad(id int, grad []float32) {
	vector.Axpy(1, grad, m.inVec(id))
	buckets := m.wordBuckets[id]
	if len(buckets) == 0 {
		return
	}
	inv := 1 / float32(len(buckets))
	for _, b := range buckets {
		vector.Axpy(inv, grad, m.gramVec(int(b)))
	}
}

// gramBuckets hashes the char n-grams of w into bucket ids. Vocabulary
// words get this precomputed into wordBuckets at build time; only
// out-of-vocabulary lookups hash on the fly.
func (m *Model) gramBuckets(w string) []int32 {
	var out []int32
	for n := m.cfg.MinN; n <= m.cfg.MaxN; n++ {
		for _, g := range textutil.CharNGrams(w, n) {
			out = append(out, int32(fnv32(g)%uint32(m.cfg.Buckets)))
		}
	}
	return out
}

func fnv32(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// WordVec returns the composed vector for a word. Out-of-vocabulary words
// are represented purely by their subword buckets, which is what lets the
// embedding metric generalize to unseen model numbers.
func (m *Model) WordVec(w string) []float32 {
	v := make([]float32, m.cfg.Dim)
	if id, ok := m.vocab[w]; ok {
		m.composeInto(v, id)
		return v
	}
	buckets := m.gramBuckets(w)
	if len(buckets) == 0 {
		return v
	}
	inv := 1 / float32(len(buckets))
	for _, b := range buckets {
		vector.Axpy(inv, m.gramVec(int(b)), v)
	}
	return v
}

// Encode returns the normalized, IDF-weighted mean word vector of the
// text — the title encoder used for similarity search and by the neural
// matchers. IDF weighting keeps the rare, discriminative tokens (model
// numbers, capacity variants) from being washed out by the shared series
// and category words, which is essential for separating corner-case
// sibling products.
func (m *Model) Encode(text string) []float32 {
	return m.EncodeTokens(textutil.Tokenize(text))
}

// EncodeTokens is Encode over a pre-tokenized title, the entry point for
// prepared-corpus callers that interned the token list once. Like Encode
// it only reads model state, so it is safe for concurrent use.
func (m *Model) EncodeTokens(toks []string) []float32 {
	v := make([]float32, m.cfg.Dim)
	if len(toks) == 0 {
		return v
	}
	var totalW float32
	for _, w := range toks {
		weight := m.idf(w)
		vector.Axpy(weight, m.WordVec(w), v)
		totalW += weight
	}
	if totalW > 0 {
		vector.Scale(1/totalW, v)
	}
	vector.Normalize(v)
	return v
}

// TokenIDF exposes the smoothed inverse-document-frequency weight of a
// word, used by matchers for IDF-weighted lexical overlap features.
func (m *Model) TokenIDF(w string) float64 { return float64(m.idf(w)) }

// idf returns a smoothed inverse-document-frequency weight for w. Unknown
// words are treated as rare (count 1) — they are usually model codes.
func (m *Model) idf(w string) float32 {
	count := 1
	if id, ok := m.vocab[w]; ok {
		count = m.counts[id] + 1
	}
	total := m.totalCount + 1
	return float32(math.Log(1 + float64(total)/float64(count)))
}

// Similarity returns the cosine similarity of the encoded texts, shifted
// from [-1,1] to [0,1] so it composes with the simlib metrics.
func (m *Model) Similarity(a, b string) float64 {
	c := vector.Cosine(m.Encode(a), m.Encode(b))
	return (c + 1) / 2
}

// Metric adapts the model to the simlib.Metric interface for registration
// in the corner-case selection registry. The returned metric binds to a
// prepared title corpus via simlib.PrepareMetric.
func (m *Model) Metric() simlib.Metric {
	return modelMetric{model: m}
}

// modelMetric is the uncached string adapter.
type modelMetric struct {
	model *Model
}

func (mm modelMetric) Name() string { return "embedding" }

func (mm modelMetric) Sim(a, b string) float64 { return mm.model.Similarity(a, b) }

// Prepare implements simlib.MetricPreparer.
func (mm modelMetric) Prepare(p *simlib.Prepared) simlib.PreparedMetric {
	return &preparedEmbedding{model: mm.model, p: p}
}

// CachedMetric is like Metric but memoizes Encode per distinct string.
// Corner-case selection and pair generation score the same titles millions
// of times; the cache turns each into a single dot product. The cache is
// safe for concurrent use (a read-mostly sync.Map keyed by title). Today's
// only caller is the single-threaded build pipeline, so the safety is
// precautionary — it exists so pipeline stages can be parallelized without
// revisiting this memo. Encode is deterministic, so even callers racing on
// a cold entry observe identical values regardless of interleaving.
func (m *Model) CachedMetric() simlib.Metric {
	return &cachedMetric{model: m}
}

type cachedMetric struct {
	model *Model
	cache sync.Map // string -> []float32
}

func (c *cachedMetric) Name() string { return "embedding" }

func (c *cachedMetric) Sim(a, b string) float64 {
	s := vector.Cosine(c.enc(a), c.enc(b))
	return (s + 1) / 2
}

func (c *cachedMetric) enc(s string) []float32 {
	if v, ok := c.cache.Load(s); ok {
		return v.([]float32)
	}
	v, _ := c.cache.LoadOrStore(s, c.model.Encode(s))
	return v.([]float32)
}

// Prepare implements simlib.MetricPreparer: the prepared variant encodes
// each interned title at most once into a dense ID-indexed cache, so the
// per-string hash probes of the sync.Map path disappear from the scoring
// loop entirely.
func (c *cachedMetric) Prepare(p *simlib.Prepared) simlib.PreparedMetric {
	return &preparedEmbedding{model: c.model, p: p}
}

// preparedEmbedding scores interned title IDs on lazily computed
// encodings. Like every PreparedMetric it is single-goroutine state; the
// parallel experiment harness keeps using CachedMetric.
type preparedEmbedding struct {
	model *Model
	p     *simlib.Prepared
	enc   [][]float32
}

func (pe *preparedEmbedding) Name() string { return "embedding" }

func (pe *preparedEmbedding) SimIDs(i, j int) float64 {
	s := vector.Cosine(pe.encode(i), pe.encode(j))
	return (s + 1) / 2
}

func (pe *preparedEmbedding) encode(i int) []float32 {
	if i >= len(pe.enc) {
		grown := make([][]float32, pe.p.Len())
		copy(grown, pe.enc)
		pe.enc = grown
	}
	if v := pe.enc[i]; v != nil {
		return v
	}
	v := pe.model.EncodeTokens(pe.p.Tokens(i))
	pe.enc[i] = v
	return v
}

// Dim returns the embedding dimension.
func (m *Model) Dim() int { return m.cfg.Dim }

// VocabSize returns the number of in-vocabulary words.
func (m *Model) VocabSize() int { return len(m.words) }

// HasWord reports whether w is in the trained vocabulary.
func (m *Model) HasWord(w string) bool {
	_, ok := m.vocab[w]
	return ok
}
