package embed

import (
	"fmt"
	"math"
	"testing"

	"wdcproducts/internal/simlib"
	"wdcproducts/internal/textutil"
	"wdcproducts/internal/vector"
	"wdcproducts/internal/xrand"
)

// syntheticTitles builds a small corpus with two clearly separated topics so
// tests can check that embeddings capture co-occurrence structure.
func syntheticTitles() []string {
	var titles []string
	drives := []string{"seagate", "western", "digital", "toshiba"}
	caps := []string{"1tb", "2tb", "4tb", "500gb"}
	for i, b := range drives {
		for j, c := range caps {
			titles = append(titles,
				fmt.Sprintf("%s internal hard drive %s sata desktop storage", b, c),
				fmt.Sprintf("%s %s hard drive internal sata pc %d", b, c, i*4+j),
			)
		}
	}
	shoes := []string{"nike", "adidas", "asics", "brooks"}
	sizes := []string{"size-9", "size-10", "size-11", "size-8"}
	for i, b := range shoes {
		for j, s := range sizes {
			titles = append(titles,
				fmt.Sprintf("%s running shoes %s breathable mesh lightweight", b, s),
				fmt.Sprintf("%s %s shoes running cushioned trainer %d", b, s, i*4+j),
			)
		}
	}
	return titles
}

func trainTest(t *testing.T) *Model {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Epochs = 5
	cfg.Dim = 24
	return Train(syntheticTitles(), cfg, xrand.New(42).Stream("embed"))
}

func TestTrainBasics(t *testing.T) {
	m := trainTest(t)
	if m.VocabSize() == 0 {
		t.Fatal("empty vocabulary after training")
	}
	if !m.HasWord("seagate") || !m.HasWord("running") {
		t.Fatal("expected vocabulary words missing")
	}
	if m.Dim() != 24 {
		t.Fatalf("Dim = %d", m.Dim())
	}
}

func TestEncodeProperties(t *testing.T) {
	m := trainTest(t)
	v := m.Encode("seagate internal hard drive 2tb")
	if len(v) != m.Dim() {
		t.Fatalf("Encode dim = %d", len(v))
	}
	if n := vector.Norm(v); math.Abs(n-1) > 1e-5 {
		t.Fatalf("Encode norm = %v, want 1", n)
	}
	zero := m.Encode("")
	if vector.Norm(zero) != 0 {
		t.Fatal("empty text should encode to zero vector")
	}
}

func TestTopicSeparation(t *testing.T) {
	m := trainTest(t)
	inTopic := m.Similarity(
		"seagate internal hard drive 2tb sata",
		"toshiba internal hard drive 4tb sata")
	crossTopic := m.Similarity(
		"seagate internal hard drive 2tb sata",
		"nike running shoes size-9 mesh")
	if inTopic <= crossTopic {
		t.Fatalf("topic separation failed: in-topic %.3f <= cross-topic %.3f", inTopic, crossTopic)
	}
}

func TestSimilarityRangeAndSymmetry(t *testing.T) {
	m := trainTest(t)
	pairs := [][2]string{
		{"seagate hard drive", "western digital drive"},
		{"nike shoes", "adidas shoes"},
		{"", "something"},
		{"seagate", "seagate"},
	}
	for _, p := range pairs {
		s1 := m.Similarity(p[0], p[1])
		s2 := m.Similarity(p[1], p[0])
		if math.Abs(s1-s2) > 1e-9 {
			t.Fatalf("similarity asymmetric for %v: %v vs %v", p, s1, s2)
		}
		if s1 < 0 || s1 > 1 {
			t.Fatalf("similarity out of range for %v: %v", p, s1)
		}
	}
	if s := m.Similarity("seagate hard drive 2tb", "seagate hard drive 2tb"); math.Abs(s-1) > 1e-5 {
		t.Fatalf("self similarity = %v", s)
	}
}

func TestOOVSubwordGeneralization(t *testing.T) {
	m := trainTest(t)
	// "seagatte" is OOV but shares subwords with "seagate"; its vector must
	// be closer to seagate's than to an unrelated word's.
	oov := m.WordVec("seagatte")
	if vector.Norm(oov) == 0 {
		t.Fatal("OOV word has zero vector (subwords not applied)")
	}
	simTypo := vector.Cosine(oov, m.WordVec("seagate"))
	simOther := vector.Cosine(oov, m.WordVec("shoes"))
	if simTypo <= simOther {
		t.Fatalf("subword generalization failed: typo-sim %.3f <= other-sim %.3f", simTypo, simOther)
	}
}

func TestDeterminism(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Epochs = 2
	a := Train(syntheticTitles(), cfg, xrand.New(7).Stream("embed"))
	b := Train(syntheticTitles(), cfg, xrand.New(7).Stream("embed"))
	va, vb := a.Encode("seagate hard drive"), b.Encode("seagate hard drive")
	for i := range va {
		if va[i] != vb[i] {
			t.Fatalf("training not deterministic at dim %d: %v vs %v", i, va[i], vb[i])
		}
	}
}

// TestPreparedEmbeddingMatchesStringMetric extends the prepared-vs-string
// equivalence property to the embedding metric: the prepared variant's
// lazily cached per-ID encodings must reproduce the string metric's scores
// exactly, for both the cached and uncached adapters.
func TestPreparedEmbeddingMatchesStringMetric(t *testing.T) {
	m := trainTest(t)
	titles := append(syntheticTitles(),
		"", "  ", "unseen-model-xyz 9tb", "nike pegasus größe 44",
		"dup dup dup", "dup dup dup")
	for _, adapter := range []simlib.Metric{m.Metric(), m.CachedMetric()} {
		prep := simlib.NewPrepared()
		ids := make([]int, len(titles))
		for i, s := range titles {
			ids[i] = prep.Intern(s)
		}
		pm := simlib.PrepareMetric(adapter, prep)
		if pm.Name() != "embedding" {
			t.Fatalf("prepared name = %q", pm.Name())
		}
		for i := range titles {
			for j := range titles {
				got := pm.SimIDs(ids[i], ids[j])
				want := adapter.Sim(titles[i], titles[j])
				if got != want {
					t.Fatalf("SimIDs(%q, %q) = %v, Sim = %v", titles[i], titles[j], got, want)
				}
			}
		}
	}
}

// TestEncodeTokensMatchesEncode pins the contract prepared callers rely
// on: encoding a pre-tokenized title equals encoding its string.
func TestEncodeTokensMatchesEncode(t *testing.T) {
	m := trainTest(t)
	for _, s := range []string{"", "seagate internal 2tb", "unseen-word kaffee 北京"} {
		a := m.Encode(s)
		b := m.EncodeTokens(textutil.Tokenize(s))
		for d := range a {
			if a[d] != b[d] {
				t.Fatalf("EncodeTokens(%q) differs at dim %d: %v vs %v", s, d, a[d], b[d])
			}
		}
	}
}

func TestMetricAdapter(t *testing.T) {
	m := trainTest(t)
	metric := m.Metric()
	if metric.Name() != "embedding" {
		t.Fatalf("metric name = %q", metric.Name())
	}
	if s := metric.Sim("a b c", "a b c"); s < 0.99 {
		t.Fatalf("metric self-sim = %v", s)
	}
}

func TestEmptyCorpus(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Epochs = 1
	m := Train(nil, cfg, xrand.New(1).Stream("e"))
	if m.VocabSize() != 0 {
		t.Fatal("empty corpus should produce empty vocab")
	}
	// Encode must still work through subword buckets without panicking.
	_ = m.Encode("anything at all")
	_ = m.Similarity("a", "b")
}

func TestMinCountFiltersRareWords(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MinCount = 3
	cfg.Epochs = 1
	titles := []string{"common common common rare", "common word word", "word common"}
	m := Train(titles, cfg, xrand.New(1).Stream("e"))
	if m.HasWord("rare") {
		t.Fatal("rare word not filtered by MinCount")
	}
	if !m.HasWord("common") {
		t.Fatal("frequent word missing")
	}
}
