package embed

import "math"

// Fingerprint returns a content hash of the trained model: configuration,
// vocabulary, and all three vector tables. Two models fingerprint equal
// iff they would encode every text identically, which is what lets a
// persisted blocking index be content-addressed to the model that
// produced its vectors across processes (unlike pointer identity, which
// is process-local). The hash walks a few megabytes of matrix on first
// call and is memoized, so the per-process cost is paid once per model.
//
// Fingerprint must not be called concurrently with training, but is safe
// for concurrent use afterwards.
func (m *Model) Fingerprint() uint64 {
	m.fpOnce.Do(func() {
		// A multiply-xor mix over 64-bit lanes: not FNV (which walks bytes
		// and would cost 8x more over the matrices), but the same
		// avalanche idea, and stable across platforms because every input
		// is folded in a defined order and width.
		const prime = 0x100000001b3
		h := uint64(14695981039346656037)
		mix := func(v uint64) {
			h ^= v
			h *= prime
			h ^= h >> 29
		}
		mix(uint64(m.cfg.Dim))
		mix(uint64(m.cfg.Window))
		mix(uint64(m.cfg.Negatives))
		mix(uint64(m.cfg.Epochs))
		mix(math.Float64bits(m.cfg.LearningRate))
		mix(uint64(m.cfg.MinCount))
		mix(uint64(m.cfg.Buckets))
		mix(uint64(m.cfg.MinN))
		mix(uint64(m.cfg.MaxN))
		if m.trained {
			mix(1)
		}
		mix(uint64(len(m.words)))
		for _, w := range m.words {
			mix(uint64(len(w)))
			for i := 0; i < len(w); i++ {
				mix(uint64(w[i]))
			}
		}
		for _, table := range [][]float32{m.in, m.grams, m.out} {
			mix(uint64(len(table)))
			for _, v := range table {
				mix(uint64(math.Float32bits(v)))
			}
		}
		m.fp = h
	})
	return m.fp
}
