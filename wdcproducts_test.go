package wdcproducts_test

import (
	"os"
	"strings"
	"testing"

	"wdcproducts"
	"wdcproducts/internal/matchers"
)

// The root tests exercise the public facade end-to-end; the heavy fixtures
// are shared with bench_test.go through setup().

func TestFacadeBuildValidateRoundTrip(t *testing.T) {
	b := testFixture(t)
	if err := wdcproducts.Validate(b); err != nil {
		t.Fatal(err)
	}
	dir, err := os.MkdirTemp("", "wdcfacade")
	if err != nil {
		t.Fatal(err)
	}
	defer os.RemoveAll(dir)
	if err := wdcproducts.Save(b, dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := wdcproducts.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Offers) != len(b.Offers) {
		t.Fatalf("round trip lost offers: %d vs %d", len(loaded.Offers), len(b.Offers))
	}
}

// testFixture reuses the bench fixture so the tiny benchmark is built once
// per `go test .` invocation.
func testFixture(t *testing.T) *wdcproducts.Benchmark {
	t.Helper()
	ensureBuild(t)
	return benchB
}

func TestFacadeMatcherTraining(t *testing.T) {
	b := testFixture(t)
	m, err := wdcproducts.NewPairMatcher("Magellan")
	if err != nil {
		t.Fatal(err)
	}
	if err := m.TrainPairs(runner.Data, b.TrainPairs(50, wdcproducts.Small),
		b.ValPairs(50, wdcproducts.Small), 1); err != nil {
		t.Fatal(err)
	}
	counts := matchers.EvaluatePairs(m, runner.Data, b.TestPairs(50, 0))
	if counts.Total() == 0 {
		t.Fatal("no pairs evaluated")
	}
}

func TestFacadeProfilingTables(t *testing.T) {
	b := testFixture(t)
	for name, s := range map[string]string{
		"table1":  wdcproducts.Table1(b).String(),
		"table6":  wdcproducts.Table6(b).String(),
		"figure3": wdcproducts.Figure3(b, 80).String(),
	} {
		if len(strings.TrimSpace(s)) == 0 {
			t.Fatalf("%s rendered empty", name)
		}
	}
}

func TestFacadeLabelQuality(t *testing.T) {
	b := testFixture(t)
	res, err := wdcproducts.LabelQuality(b, benchC, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Kappa <= 0 || res.SampledPairs == 0 {
		t.Fatalf("label quality degenerate: %+v", res)
	}
}

func TestFacadeSystemLists(t *testing.T) {
	systems := wdcproducts.PairSystems()
	if len(systems) != 6 {
		t.Fatalf("PairSystems = %v", systems)
	}
	for _, s := range systems {
		if _, err := wdcproducts.NewPairMatcher(s); err != nil {
			t.Fatalf("constructor for %s failed: %v", s, err)
		}
	}
	if _, err := wdcproducts.NewPairMatcher("bogus"); err == nil {
		t.Fatal("bogus system accepted")
	}
}

func TestFacadeBlockingReport(t *testing.T) {
	ensureBuild(t)
	// token + minhash avoid encoder training, keeping the facade test fast.
	table, err := wdcproducts.BlockingReport(benchB, []string{"token", "minhash"}, 42, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 2 {
		t.Fatalf("got %d rows, want 2:\n%s", len(table.Rows), table)
	}
	if table.Rows[0][0] != "token-blocking" || table.Rows[1][0] != "minhash-lsh" {
		t.Fatalf("unexpected blocker rows:\n%s", table)
	}
	if _, err := wdcproducts.BlockingReport(benchB, []string{"bogus"}, 42, 1); err == nil {
		t.Fatal("unknown blocker name did not error")
	}
	if got := wdcproducts.ParseBlockerNames("all"); got != nil {
		t.Fatalf("ParseBlockerNames(all) = %v, want nil", got)
	}
	if got := wdcproducts.ParseBlockerNames("token,hnsw"); len(got) != 2 || got[0] != "token" || got[1] != "hnsw" {
		t.Fatalf("ParseBlockerNames(token,hnsw) = %v", got)
	}
	names := wdcproducts.BlockerNames()
	if names[len(names)-1] != "ivf" {
		t.Fatalf("BlockerNames = %v, want ivf last", names)
	}
}

func TestFacadeBlockingScaleReport(t *testing.T) {
	ensureBuild(t)
	// token + minhash avoid encoder training, keeping the facade test fast.
	table, err := wdcproducts.BlockingScaleReport(benchB, []string{"token", "minhash"}, 42, 1)
	if err != nil {
		t.Fatal(err)
	}
	// 3 corner ratios x 3 unseen fractions = 9 split rows per blocker, plus
	// one build row for the index-backed minhash blocker.
	if len(table.Rows) != 19 {
		t.Fatalf("got %d rows, want 19:\n%s", len(table.Rows), table)
	}
	if table.Rows[0][0] != "token-blocking" || table.Rows[9][0] != "minhash-lsh" {
		t.Fatalf("unexpected blocker rows:\n%s", table)
	}
	if table.Rows[9][1] != "build" {
		t.Fatalf("minhash rows do not start with a build row:\n%s", table)
	}
	if _, err := wdcproducts.BlockingScaleReport(benchB, []string{"bogus"}, 42, 1); err == nil {
		t.Fatal("unknown blocker name did not error")
	}
}
