package wdcproducts_test

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"wdcproducts"
	"wdcproducts/internal/matchers"
)

var updateGolden = flag.Bool("update", false, "rewrite golden fixtures from the current report output")

// The root tests exercise the public facade end-to-end; the heavy fixtures
// are shared with bench_test.go through setup().

func TestFacadeBuildValidateRoundTrip(t *testing.T) {
	b := testFixture(t)
	if err := wdcproducts.Validate(b); err != nil {
		t.Fatal(err)
	}
	dir, err := os.MkdirTemp("", "wdcfacade")
	if err != nil {
		t.Fatal(err)
	}
	defer os.RemoveAll(dir)
	if err := wdcproducts.Save(b, dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := wdcproducts.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Offers) != len(b.Offers) {
		t.Fatalf("round trip lost offers: %d vs %d", len(loaded.Offers), len(b.Offers))
	}
}

// testFixture reuses the bench fixture so the tiny benchmark is built once
// per `go test .` invocation.
func testFixture(t *testing.T) *wdcproducts.Benchmark {
	t.Helper()
	ensureBuild(t)
	return benchB
}

func TestFacadeMatcherTraining(t *testing.T) {
	b := testFixture(t)
	m, err := wdcproducts.NewPairMatcher("Magellan")
	if err != nil {
		t.Fatal(err)
	}
	if err := m.TrainPairs(runner.Data, b.TrainPairs(50, wdcproducts.Small),
		b.ValPairs(50, wdcproducts.Small), 1); err != nil {
		t.Fatal(err)
	}
	counts := matchers.EvaluatePairs(m, runner.Data, b.TestPairs(50, 0))
	if counts.Total() == 0 {
		t.Fatal("no pairs evaluated")
	}
}

func TestFacadeProfilingTables(t *testing.T) {
	b := testFixture(t)
	for name, s := range map[string]string{
		"table1":  wdcproducts.Table1(b).String(),
		"table6":  wdcproducts.Table6(b).String(),
		"figure3": wdcproducts.Figure3(b, 80).String(),
	} {
		if len(strings.TrimSpace(s)) == 0 {
			t.Fatalf("%s rendered empty", name)
		}
	}
}

func TestFacadeLabelQuality(t *testing.T) {
	b := testFixture(t)
	res, err := wdcproducts.LabelQuality(b, benchC, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Kappa <= 0 || res.SampledPairs == 0 {
		t.Fatalf("label quality degenerate: %+v", res)
	}
}

func TestFacadeSystemLists(t *testing.T) {
	systems := wdcproducts.PairSystems()
	if len(systems) != 6 {
		t.Fatalf("PairSystems = %v", systems)
	}
	for _, s := range systems {
		if _, err := wdcproducts.NewPairMatcher(s); err != nil {
			t.Fatalf("constructor for %s failed: %v", s, err)
		}
	}
	if _, err := wdcproducts.NewPairMatcher("bogus"); err == nil {
		t.Fatal("bogus system accepted")
	}
}

func TestFacadeBlockingReport(t *testing.T) {
	ensureBuild(t)
	// token + minhash avoid encoder training, keeping the facade test fast.
	table, err := wdcproducts.BlockingReport(benchB, []string{"token", "minhash"}, 42, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 2 {
		t.Fatalf("got %d rows, want 2:\n%s", len(table.Rows), table)
	}
	if table.Rows[0][0] != "token-blocking" || table.Rows[1][0] != "minhash-lsh" {
		t.Fatalf("unexpected blocker rows:\n%s", table)
	}
	if _, err := wdcproducts.BlockingReport(benchB, []string{"bogus"}, 42, 1); err == nil {
		t.Fatal("unknown blocker name did not error")
	}
	if got := wdcproducts.ParseBlockerNames("all"); got != nil {
		t.Fatalf("ParseBlockerNames(all) = %v, want nil", got)
	}
	if got := wdcproducts.ParseBlockerNames("token,hnsw"); len(got) != 2 || got[0] != "token" || got[1] != "hnsw" {
		t.Fatalf("ParseBlockerNames(token,hnsw) = %v", got)
	}
	names := wdcproducts.BlockerNames()
	if names[len(names)-1] != "ivf" {
		t.Fatalf("BlockerNames = %v, want ivf last", names)
	}
}

func TestFacadeParseBlockerNames(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"", nil},
		{"all", nil},
		{"  all  ", nil},
		{"minhash, hnsw", []string{"minhash", "hnsw"}},
		{"token,minhash,", []string{"token", "minhash"}},
		{" token , token ,minhash", []string{"token", "minhash"}},
		{",,", nil},
	}
	for _, tc := range cases {
		got := wdcproducts.ParseBlockerNames(tc.in)
		if len(got) != len(tc.want) {
			t.Errorf("ParseBlockerNames(%q) = %v, want %v", tc.in, got, tc.want)
			continue
		}
		for i := range tc.want {
			if got[i] != tc.want[i] {
				t.Errorf("ParseBlockerNames(%q) = %v, want %v", tc.in, got, tc.want)
				break
			}
		}
	}
}

// TestFacadeMatcherBlockingReport pins the matcher-in-the-loop study
// end-to-end: the table must be byte-identical at workers 1 and 4 (the
// acceptance bar of the -matchblock CLI) and byte-identical to the golden
// fixture (run with -update to regenerate). token + minhash avoid the
// blocker-side encoder; the runner-side encoder is trained either way.
func TestFacadeMatcherBlockingReport(t *testing.T) {
	ensureBuild(t)
	names := []string{"token", "minhash"}
	systems := []string{"Word-Cooc", "Magellan", "RoBERTa"}
	serial, err := wdcproducts.MatcherBlockingReport(benchB, names, systems, 42, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := wdcproducts.MatcherBlockingReport(benchB, names, systems, 42, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if serial.String() != par.String() {
		t.Fatalf("matcher-blocking table differs across worker counts:\nworkers=1:\n%s\nworkers=4:\n%s", serial, par)
	}
	// One baseline row block plus one per blocker, one row per system each.
	wantRows := (1 + len(names)) * len(systems)
	if len(serial.Rows) != wantRows {
		t.Fatalf("got %d rows, want %d:\n%s", len(serial.Rows), wantRows, serial)
	}
	if serial.Rows[0][0] != wdcproducts.NoBlockingBaseline {
		t.Fatalf("first row is not the unblocked baseline:\n%s", serial)
	}
	path := filepath.Join("testdata", "matchblock_golden.txt")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(serial.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden fixture (run with -update): %v", err)
	}
	if serial.String() != string(want) {
		t.Errorf("matcher-blocking table differs from golden %s:\ngot:\n%s\nwant:\n%s", path, serial, want)
	}
}

func TestFacadeMatcherBlockingReportErrors(t *testing.T) {
	ensureBuild(t)
	if _, err := wdcproducts.MatcherBlockingReport(benchB, []string{"bogus"}, nil, 42, 1, 1); err == nil {
		t.Fatal("unknown blocker name did not error")
	}
	if _, err := wdcproducts.MatcherBlockingReport(benchB, []string{"token"}, []string{"bogus"}, 42, 1, 1); err == nil {
		t.Fatal("unknown system name did not error")
	}
}

func TestFacadeBlockingScaleReport(t *testing.T) {
	ensureBuild(t)
	// token + minhash avoid encoder training, keeping the facade test fast.
	table, err := wdcproducts.BlockingScaleReport(benchB, []string{"token", "minhash"}, 42, 1)
	if err != nil {
		t.Fatal(err)
	}
	// 3 corner ratios x 3 unseen fractions = 9 split rows per blocker, plus
	// one build row for the index-backed minhash blocker.
	if len(table.Rows) != 19 {
		t.Fatalf("got %d rows, want 19:\n%s", len(table.Rows), table)
	}
	if table.Rows[0][0] != "token-blocking" || table.Rows[9][0] != "minhash-lsh" {
		t.Fatalf("unexpected blocker rows:\n%s", table)
	}
	if table.Rows[9][1] != "build" {
		t.Fatalf("minhash rows do not start with a build row:\n%s", table)
	}
	if _, err := wdcproducts.BlockingScaleReport(benchB, []string{"bogus"}, 42, 1); err == nil {
		t.Fatal("unknown blocker name did not error")
	}
}

// TestFacadeBlockingOptionsLog pins the -v acquisition log: a first run
// against an empty snapshot dir builds and saves, a second run loads,
// and a corrupted snapshot is refused with the typed reason before the
// rebuild re-saves.
func TestFacadeBlockingOptionsLog(t *testing.T) {
	ensureBuild(t)
	dir := t.TempDir()
	run := func() string {
		var buf strings.Builder
		opts := wdcproducts.BlockingOptions{SnapshotDir: dir, Log: &buf}
		if _, err := wdcproducts.BlockingReportOpts(benchB, []string{"minhash"}, 42, 1, opts); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	first := run()
	if !strings.Contains(first, "minhash-lsh: built fresh") ||
		!strings.Contains(first, "minhash-lsh: saved snapshot") {
		t.Fatalf("first run log = %q, want built fresh + saved", first)
	}
	second := run()
	if !strings.Contains(second, "minhash-lsh: loaded snapshot") {
		t.Fatalf("second run log = %q, want loaded", second)
	}
	snaps, err := filepath.Glob(filepath.Join(dir, "*.snap"))
	if err != nil || len(snaps) != 1 {
		t.Fatalf("snapshots in dir = %v, %v; want exactly one", snaps, err)
	}
	data, err := os.ReadFile(snaps[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(snaps[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	third := run()
	if !strings.Contains(third, "minhash-lsh: snapshot refused") ||
		!strings.Contains(third, "rebuilt") {
		t.Fatalf("corrupted run log = %q, want refused + rebuilt", third)
	}
	fourth := run()
	if !strings.Contains(fourth, "minhash-lsh: loaded snapshot") {
		t.Fatalf("post-rebuild run log = %q, want loaded from re-saved snapshot", fourth)
	}
}
