// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation (§4-§5), plus ablation benches quantifying the
// benchmark-construction devices (see docs/architecture.md). Each table
// bench regenerates its artifact through the same harness code the
// wdcprofile/wdceval commands use, prints it once, and reports the
// headline number as a custom metric.
//
// The expensive parts — building the benchmark and training the systems —
// run once and are shared; regeneration of each table from the trained
// results is what the loop measures. BenchmarkFigure2_PipelineSteps is the
// exception: it measures a full pipeline build per iteration.
package wdcproducts_test

import (
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"wdcproducts"
	"wdcproducts/internal/blocking"
	"wdcproducts/internal/core"
	"wdcproducts/internal/embed"
	"wdcproducts/internal/ivf"
	"wdcproducts/internal/matchers"
	"wdcproducts/internal/pairgen"
	"wdcproducts/internal/parallel"
	"wdcproducts/internal/simlib"
	"wdcproducts/internal/synth"
	"wdcproducts/internal/xrand"
)

var (
	buildOnce sync.Once
	expOnce   sync.Once
	benchB    *wdcproducts.Benchmark
	benchC    *wdcproducts.Corpus
	runner    *wdcproducts.Runner
	pairRes   *wdcproducts.Results
	multiRes  *wdcproducts.Results
	setupErr  error

	printOnce sync.Map
)

// ensureBuild constructs the shared tiny benchmark and encoder, used by
// both the facade tests and the benches.
func ensureBuild(tb testing.TB) {
	tb.Helper()
	buildOnce.Do(func() {
		benchB, benchC, setupErr = wdcproducts.BuildWithCorpus(wdcproducts.TinyScale(42))
		if setupErr != nil {
			return
		}
		runner = wdcproducts.NewRunner(benchB, 42)
	})
	if setupErr != nil {
		tb.Fatal(setupErr)
	}
}

// setup additionally runs the 1-repetition experiment matrix all table
// benches read from.
func setup(b *testing.B) {
	b.Helper()
	ensureBuild(b)
	expOnce.Do(func() {
		pairRes, setupErr = runner.RunPairwise(wdcproducts.ExperimentConfig{Repetitions: 1, Seed: 42})
		if setupErr != nil {
			return
		}
		multiRes, setupErr = runner.RunMulti(wdcproducts.ExperimentConfig{Repetitions: 1, Seed: 42})
	})
	if setupErr != nil {
		b.Fatal(setupErr)
	}
}

// printTable prints a table exactly once per benchmark name, so `go test
// -bench` output shows the regenerated rows without repeating them b.N
// times.
func printTable(name, s string) {
	if _, loaded := printOnce.LoadOrStore(name, true); !loaded {
		fmt.Printf("\n%s\n", s)
	}
}

func BenchmarkTable1_SplitStatistics(b *testing.B) {
	setup(b)
	for i := 0; i < b.N; i++ {
		t := wdcproducts.Table1(benchB)
		printTable("table1", t.String())
	}
}

func BenchmarkTable2_AttributeProfile(b *testing.B) {
	setup(b)
	bpe := wdcproducts.TrainBPE(benchB, 400)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := wdcproducts.Table2With(benchB, bpe)
		printTable("table2", t.String())
	}
}

func BenchmarkTable3_PairwiseF1(b *testing.B) {
	setup(b)
	for i := 0; i < b.N; i++ {
		t := wdcproducts.Table3(pairRes, nil)
		printTable("table3", t.String())
	}
	b.ReportMetric(cellF1(b, "R-SupCon", 50, wdcproducts.Medium, 0)*100, "rsupcon-seen-F1")
	b.ReportMetric(cellF1(b, "R-SupCon", 50, wdcproducts.Medium, 100)*100, "rsupcon-unseen-F1")
}

func BenchmarkTable4_PrecisionRecall(b *testing.B) {
	setup(b)
	for i := 0; i < b.N; i++ {
		t := wdcproducts.Table4(pairRes, nil)
		printTable("table4", t.String())
	}
}

func BenchmarkTable5_MultiClass(b *testing.B) {
	setup(b)
	for i := 0; i < b.N; i++ {
		t := wdcproducts.Table5(multiRes, nil)
		printTable("table5", t.String())
	}
	if c := multiRes.MultiCellFor("R-SupCon", 50, wdcproducts.Large); c != nil {
		b.ReportMetric(c.MicroF1*100, "rsupcon-microF1")
	}
}

func BenchmarkTable6_BenchmarkComparison(b *testing.B) {
	setup(b)
	for i := 0; i < b.N; i++ {
		t := wdcproducts.Table6(benchB)
		printTable("table6", t.String())
	}
}

func BenchmarkFigure1_ExamplePairs(b *testing.B) {
	setup(b)
	pairs := benchB.TestPairs(80, 0)
	scorer, err := wdcproducts.NewTitleScorer(benchB, "jaccard")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// The Figure 1 artifact: hardest positive and hardest negative.
		var hardPos, hardNeg wdcproducts.Pair
		hardPosSim, hardNegSim := 2.0, -1.0
		for _, p := range pairs {
			s := scorer.MustSim("jaccard", p.A, p.B)
			if p.Match && s < hardPosSim {
				hardPos, hardPosSim = p, s
			}
			if !p.Match && s > hardNegSim {
				hardNeg, hardNegSim = p, s
			}
		}
		printTable("figure1", fmt.Sprintf(
			"Figure 1: hard match (jaccard %.2f)\n  %s\n  %s\nhard non-match (jaccard %.2f)\n  %s\n  %s\n",
			hardPosSim, benchB.Offer(hardPos.A).Title, benchB.Offer(hardPos.B).Title,
			hardNegSim, benchB.Offer(hardNeg.A).Title, benchB.Offer(hardNeg.B).Title))
	}
}

func BenchmarkFigure2_PipelineSteps(b *testing.B) {
	// The one bench that measures the end-to-end §3 pipeline itself.
	for i := 0; i < b.N; i++ {
		bb, err := wdcproducts.Build(wdcproducts.TinyScale(int64(1000 + i)))
		if err != nil {
			b.Fatal(err)
		}
		printTable("figure2", fmt.Sprintf(
			"Figure 2 pipeline: products=%d pages=%d extracted=%d cleansed=%d groups=%d",
			bb.Stats.CorpusProducts, bb.Stats.PagesGenerated, bb.Stats.OffersExtracted,
			bb.Stats.OffersCleansed, bb.Stats.DBSCANGroups))
	}
}

func BenchmarkFigure3_ClusterSizes(b *testing.B) {
	setup(b)
	for i := 0; i < b.N; i++ {
		t := wdcproducts.Figure3(benchB, 80)
		printTable("figure3", t.String())
	}
}

func BenchmarkFigure4_CornerCaseDimension(b *testing.B) {
	setup(b)
	for i := 0; i < b.N; i++ {
		t := wdcproducts.Figure4(pairRes, nil)
		printTable("figure4", t.String())
	}
	easy := cellF1(b, "Ditto", 20, wdcproducts.Medium, 0)
	hard := cellF1(b, "Ditto", 80, wdcproducts.Medium, 0)
	b.ReportMetric((easy-hard)*100, "ditto-cc-dropF1")
}

func BenchmarkFigure5_UnseenDimension(b *testing.B) {
	setup(b)
	for i := 0; i < b.N; i++ {
		t := wdcproducts.Figure5(pairRes, nil)
		printTable("figure5", t.String())
	}
	seen := cellF1(b, "R-SupCon", 50, wdcproducts.Medium, 0)
	unseen := cellF1(b, "R-SupCon", 50, wdcproducts.Medium, 100)
	b.ReportMetric((seen-unseen)*100, "rsupcon-unseen-dropF1")
}

func BenchmarkFigure6_DevSizeDimension(b *testing.B) {
	setup(b)
	for i := 0; i < b.N; i++ {
		t := wdcproducts.Figure6(pairRes, nil)
		printTable("figure6", t.String())
	}
	small := cellF1(b, "RoBERTa", 50, wdcproducts.Small, 0)
	large := cellF1(b, "RoBERTa", 50, wdcproducts.Large, 0)
	b.ReportMetric((large-small)*100, "roberta-devsize-gainF1")
}

func BenchmarkLabelQuality_Kappa(b *testing.B) {
	setup(b)
	var kappa float64
	for i := 0; i < b.N; i++ {
		res, err := wdcproducts.LabelQuality(benchB, benchC, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		kappa = res.Kappa
		printTable("labels", fmt.Sprintf(
			"Label quality: %d pairs, noise %.2f%%/%.2f%%, kappa %.3f",
			res.SampledPairs, res.NoiseEstimate[0]*100, res.NoiseEstimate[1]*100, res.Kappa))
	}
	b.ReportMetric(kappa, "kappa")
}

// --- Parallel harness benches ----------------------------------------------

// benchMatrixSystems is the system subset the harness benches train: one
// representative of each matcher family (SVM, forest, MLP) keeps a full
// 27-variant matrix affordable per iteration.
var benchMatrixSystems = []string{"Word-Cooc", "Magellan", "RoBERTa"}

// runMatrix runs one pair-wise experiment matrix at the given worker
// count on the shared tiny benchmark.
func runMatrix(b *testing.B, workers int) {
	b.Helper()
	cfg := wdcproducts.ExperimentConfig{
		Repetitions: 1, Seed: 42, Workers: workers, Systems: benchMatrixSystems,
	}
	if _, err := runner.RunPairwise(cfg); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkExperimentMatrix_Serial measures the Workers: 1 path — the
// pre-refactor behaviour of the harness.
func BenchmarkExperimentMatrix_Serial(b *testing.B) {
	setup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runMatrix(b, 1)
	}
}

// BenchmarkExperimentMatrix_Parallel measures the default Workers: 0
// (NumCPU) path over the same matrix.
func BenchmarkExperimentMatrix_Parallel(b *testing.B) {
	setup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runMatrix(b, 0)
	}
}

// BenchmarkExperimentMatrix_Speedup times both paths back to back in each
// iteration and reports the wall-clock speedup and the core count it was
// achieved on (1.0 is the expected floor on a single-core machine).
func BenchmarkExperimentMatrix_Speedup(b *testing.B) {
	setup(b)
	var serial, par time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		runMatrix(b, 1)
		serial += time.Since(t0)
		t1 := time.Now()
		runMatrix(b, 0)
		par += time.Since(t1)
	}
	if par > 0 {
		b.ReportMetric(float64(serial)/float64(par), "serial/parallel-speedup")
	}
	b.ReportMetric(float64(runtime.NumCPU()), "cores")
}

// --- Ablation benches --------------------------------------------------------

// BenchmarkAblation_SingleMetricSelection compares corner-case selection
// bias: how well a single-metric matcher solves a test set whose corner
// cases were chosen by that same metric vs by the alternating registry.
func BenchmarkAblation_SingleMetricSelection(b *testing.B) {
	setup(b)
	// The fixture benchmark used the alternating registry. Measure how well
	// a pure-cosine thresholder solves its cc=80% test set.
	scorer, err := wdcproducts.NewTitleScorer(benchB, "cosine")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	solve := func(pairs []wdcproducts.Pair) float64 {
		scores := make([]float64, len(pairs))
		labels := make([]bool, len(pairs))
		for i, p := range pairs {
			scores[i] = scorer.MustSim("cosine", p.A, p.B)
			labels[i] = p.Match
		}
		return bestF1(scores, labels)
	}
	var f1 float64
	for i := 0; i < b.N; i++ {
		f1 = solve(benchB.TestPairs(80, 0))
	}
	b.ReportMetric(f1*100, "cosine-solver-F1")
	printTable("ablation-metric", fmt.Sprintf(
		"Ablation: pure-cosine thresholder F1 on alternating-metric benchmark = %.2f\n"+
			"(the §3.4 anti-bias device keeps single-metric solvers from solving the benchmark)", f1*100))
}

// BenchmarkAblation_NegativesPerOffer sweeps the K corner negatives per
// offer of §3.6 and reports resulting set sizes, the dev-size construction
// device.
func BenchmarkAblation_NegativesPerOffer(b *testing.B) {
	setup(b)
	rd := benchB.Ratios[50]
	var members []pairgen.Member
	for class, ci := range rd.Classes {
		members = append(members, pairgen.Member{Product: class, Offers: ci.TrainMedium})
	}
	title := func(i int) string { return benchB.Offer(i).Title }
	var sizes [4]int
	for i := 0; i < b.N; i++ {
		for k := 1; k <= 4; k++ {
			src := xrand.New(int64(k))
			reg := simlib.NewRegistry(src.Stream("reg"), simlib.DefaultMetrics()...)
			pairs := pairgen.Generate(members,
				pairgen.Config{CornerNegatives: k, RandomNegatives: 1}, title, reg, src.Stream("p"))
			sizes[k-1] = len(pairs)
		}
	}
	printTable("ablation-negs", fmt.Sprintf(
		"Ablation: pairs generated at K corner negatives/offer: K=1:%d K=2:%d K=3:%d K=4:%d",
		sizes[0], sizes[1], sizes[2], sizes[3]))
	b.ReportMetric(float64(sizes[3]-sizes[0]), "pair-count-spread")
}

// BenchmarkAblation_ContrastiveFreeze contrasts the full two-stage
// R-SupCon against a head trained directly on raw-encoder similarity (no
// contrastive stage), quantifying what stage 1 buys on seen products.
func BenchmarkAblation_ContrastiveFreeze(b *testing.B) {
	setup(b)
	var withStage1, withoutStage1 float64
	for i := 0; i < b.N; i++ {
		m, err := wdcproducts.NewPairMatcher("R-SupCon")
		if err != nil {
			b.Fatal(err)
		}
		if err := m.TrainPairs(runner.Data, benchB.TrainPairs(50, wdcproducts.Medium),
			benchB.ValPairs(50, wdcproducts.Medium), 3); err != nil {
			b.Fatal(err)
		}
		counts := matchers.EvaluatePairs(m, runner.Data, benchB.TestPairs(50, 0))
		withStage1 = counts.F1()

		// No-stage-1 baseline: plain RoBERTa-substitute head on the same
		// data (the raw pretrained encoder with a discriminative head).
		raw, err := wdcproducts.NewPairMatcher("RoBERTa")
		if err != nil {
			b.Fatal(err)
		}
		if err := raw.TrainPairs(runner.Data, benchB.TrainPairs(50, wdcproducts.Medium),
			benchB.ValPairs(50, wdcproducts.Medium), 3); err != nil {
			b.Fatal(err)
		}
		rawCounts := matchers.EvaluatePairs(raw, runner.Data, benchB.TestPairs(50, 0))
		withoutStage1 = rawCounts.F1()
	}
	printTable("ablation-freeze", fmt.Sprintf(
		"Ablation: seen-test F1 with contrastive stage 1 = %.2f, without = %.2f",
		withStage1*100, withoutStage1*100))
	b.ReportMetric((withStage1-withoutStage1)*100, "stage1-gainF1")
}

// BenchmarkExtension_Blocking measures the §6 blocking extension: token
// blocking over one test split, reporting pair completeness and reduction.
func BenchmarkExtension_Blocking(b *testing.B) {
	setup(b)
	productOf := map[int]int{}
	var idxs []int
	for _, tp := range benchB.Ratios[50].TestProducts[0] {
		for _, o := range tp.Offers {
			productOf[o] = tp.Slot
			idxs = append(idxs, o)
		}
	}
	truth := func(x, y int) bool { return productOf[x] == productOf[y] }
	var m blocking.Metrics
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cands := blocking.NewTokenBlocker().Candidates(benchB.Offers, idxs)
		m = blocking.Evaluate(cands, idxs, truth)
	}
	b.ReportMetric(m.PairCompleteness*100, "pair-completeness")
	b.ReportMetric(m.ReductionRatio*100, "reduction-ratio")
	printTable("blocking", fmt.Sprintf(
		"Blocking extension: %d candidates, completeness %.1f%%, reduction %.1f%%",
		m.Candidates, m.PairCompleteness*100, m.ReductionRatio*100))
}

// --- Sublinear blocking benches (§6, PR 3) ---------------------------------

// The blocking-scale benches compare candidate-generation cost as the
// offer universe grows: the exhaustive embedding blocker scores every pair
// (ns/offer grows linearly with n), while MinHash-LSH and HNSW stay
// sublinear (ns/offer roughly flat, up to collision and log factors). Each
// sub-bench reports ns/offer plus the quality metrics of the produced
// candidate set; the kNN blockers additionally report how much of the
// exhaustive embedding blocker's pair set they recover at the same K.

// blockKNN is the per-offer neighbour budget shared by the embedding and
// HNSW blockers, so their rows are directly comparable.
const blockKNN = 6

var (
	blockOnce  sync.Once
	blockModel *embed.Model

	exhaustiveMu    sync.Mutex
	exhaustiveCache = map[int][]blocking.CandidatePair{}
)

// blockingBenchSetup trains the one title encoder the embedding-space
// blockers share (tests and benches alike — hence testing.TB).
func blockingBenchSetup(b testing.TB) {
	b.Helper()
	ensureBuild(b)
	blockOnce.Do(func() {
		titles := make([]string, len(benchB.Offers))
		for i := range benchB.Offers {
			titles[i] = benchB.Offers[i].Title
		}
		blockModel = embed.Train(titles, embed.DefaultConfig(), xrand.New(42).Stream("block-embed"))
	})
}

// blockingSizes are the offer-universe sizes of the scaling sub-benches:
// quarter, half, and the full tiny-benchmark corpus.
func blockingSizes() []int {
	n := len(benchB.Offers)
	return []int{n / 4, n / 2, n}
}

// exhaustivePairs returns (and caches) the exhaustive embedding blocker's
// candidate set over the first n offers — the reference the approximate
// blockers' recall is measured against.
func exhaustivePairs(n int) []blocking.CandidatePair {
	exhaustiveMu.Lock()
	defer exhaustiveMu.Unlock()
	if cands, ok := exhaustiveCache[n]; ok {
		return cands
	}
	idxs := make([]int, n)
	for i := range idxs {
		idxs[i] = i
	}
	cands := blocking.NewEmbeddingBlocker(blockModel, blockKNN).Candidates(benchB.Offers, idxs)
	exhaustiveCache[n] = cands
	return cands
}

// pairRecall is the fraction of want-pairs present in got.
func pairRecall(got, want []blocking.CandidatePair) float64 {
	if len(want) == 0 {
		return 1
	}
	set := make(map[blocking.CandidatePair]bool, len(got))
	for _, p := range got {
		set[p] = true
	}
	hit := 0
	for _, p := range want {
		if set[p] {
			hit++
		}
	}
	return float64(hit) / float64(len(want))
}

// benchBlockerAt measures one blocker over the first n offers, reporting
// ns/offer, candidate count, completeness against the corpus cluster
// ground truth, reduction ratio, and (when vsExhaustive) recall of the
// exhaustive embedding blocker's pairs.
func benchBlockerAt(b *testing.B, mk func() blocking.Blocker, n int, vsExhaustive bool) {
	b.Helper()
	idxs := make([]int, n)
	for i := range idxs {
		idxs[i] = i
	}
	truth := func(x, y int) bool {
		return benchB.Offers[x].ClusterID == benchB.Offers[y].ClusterID
	}
	var cands []blocking.CandidatePair
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cands = mk().Candidates(benchB.Offers, idxs)
	}
	b.StopTimer()
	m := blocking.Evaluate(cands, idxs, truth)
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(n), "ns/offer")
	b.ReportMetric(float64(m.Candidates), "pairs")
	b.ReportMetric(m.PairCompleteness*100, "pair-completeness")
	b.ReportMetric(m.ReductionRatio*100, "reduction-ratio")
	if vsExhaustive {
		b.ReportMetric(pairRecall(cands, exhaustivePairs(n))*100, "exhaustive-recall")
	}
}

// BenchmarkBlockingScale_EmbeddingExhaustive is the baseline: exhaustive
// per-offer top-K scoring, quadratic in the universe size.
func BenchmarkBlockingScale_EmbeddingExhaustive(b *testing.B) {
	blockingBenchSetup(b)
	for _, n := range blockingSizes() {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchBlockerAt(b, func() blocking.Blocker {
				return blocking.NewEmbeddingBlocker(blockModel, blockKNN)
			}, n, false)
		})
	}
}

// BenchmarkBlockingScale_MinHashLSH measures banded MinHash-LSH candidate
// generation over the title token sets.
func BenchmarkBlockingScale_MinHashLSH(b *testing.B) {
	blockingBenchSetup(b)
	for _, n := range blockingSizes() {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchBlockerAt(b, func() blocking.Blocker {
				return blocking.NewMinHashBlocker()
			}, n, true)
		})
	}
}

// BenchmarkBlockingScale_HNSW measures approximate embedding kNN blocking
// through the HNSW graph, at the same K as the exhaustive baseline.
func BenchmarkBlockingScale_HNSW(b *testing.B) {
	blockingBenchSetup(b)
	for _, n := range blockingSizes() {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchBlockerAt(b, func() blocking.Blocker {
				return blocking.NewHNSWBlocker(blockModel, blockKNN)
			}, n, true)
		})
	}
}

// BenchmarkBlockingScale_IVF measures approximate embedding kNN blocking
// through the inverted-file index, at the same K as the exhaustive
// baseline.
func BenchmarkBlockingScale_IVF(b *testing.B) {
	blockingBenchSetup(b)
	for _, n := range blockingSizes() {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchBlockerAt(b, func() blocking.Blocker {
				return blocking.NewIVFBlocker(blockModel, blockKNN)
			}, n, true)
		})
	}
}

// --- Index-reuse benches (§6, PR 4) -----------------------------------------

// The reuse benches separate what BenchmarkBlockingScale conflates: index
// construction (pay once per corpus) vs split querying (pay per split and
// seed). Each sub-bench builds one index (build-ms), runs the first query
// against it (query-cold-ms — this one materializes the lazily computed
// neighbour lists and the query memo), then measures steady-state repeat
// queries (query-ms — the cost the §6 study pays when the same split
// returns across seeds and repetitions). rebuild-ms is the legacy
// rebuild-per-call cost of Candidates on a fresh blocker over the same
// universe, and reuse-speedup = rebuild-ms / query-ms is the factor the
// reusable index saves per repeated query.
func benchIndexReuse(b *testing.B, mk func() blocking.IndexedBlocker, n int) {
	b.Helper()
	idxs := make([]int, n)
	for i := range idxs {
		idxs[i] = i
	}
	t0 := time.Now()
	ix := mk().BuildIndex(benchB.Offers, idxs)
	buildMS := float64(time.Since(t0).Microseconds()) / 1000
	t1 := time.Now()
	ix.Candidates(idxs)
	coldMS := float64(time.Since(t1).Microseconds()) / 1000
	var cands []blocking.CandidatePair
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cands = ix.Candidates(idxs)
	}
	b.StopTimer()
	queryMS := float64(b.Elapsed().Microseconds()) / 1000 / float64(b.N)
	t2 := time.Now()
	rebuilt := mk().Candidates(benchB.Offers, idxs)
	rebuildMS := float64(time.Since(t2).Microseconds()) / 1000
	if len(rebuilt) != len(cands) {
		b.Fatalf("reused index returned %d pairs, rebuild %d", len(cands), len(rebuilt))
	}
	b.ReportMetric(buildMS, "build-ms")
	b.ReportMetric(coldMS, "query-cold-ms")
	b.ReportMetric(queryMS, "query-ms")
	b.ReportMetric(rebuildMS, "rebuild-ms")
	if queryMS > 0 {
		b.ReportMetric(rebuildMS/queryMS, "reuse-speedup")
	}
	b.ReportMetric(float64(len(cands)), "pairs")
}

func BenchmarkBlockingReuse_MinHashLSH(b *testing.B) {
	blockingBenchSetup(b)
	for _, n := range blockingSizes() {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchIndexReuse(b, func() blocking.IndexedBlocker {
				return blocking.NewMinHashBlocker()
			}, n)
		})
	}
}

func BenchmarkBlockingReuse_Embedding(b *testing.B) {
	blockingBenchSetup(b)
	for _, n := range blockingSizes() {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchIndexReuse(b, func() blocking.IndexedBlocker {
				return blocking.NewEmbeddingBlocker(blockModel, blockKNN)
			}, n)
		})
	}
}

func BenchmarkBlockingReuse_HNSW(b *testing.B) {
	blockingBenchSetup(b)
	for _, n := range blockingSizes() {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchIndexReuse(b, func() blocking.IndexedBlocker {
				return blocking.NewHNSWBlocker(blockModel, blockKNN)
			}, n)
		})
	}
}

func BenchmarkBlockingReuse_IVF(b *testing.B) {
	blockingBenchSetup(b)
	for _, n := range blockingSizes() {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchIndexReuse(b, func() blocking.IndexedBlocker {
				return blocking.NewIVFBlocker(blockModel, blockKNN)
			}, n)
		})
	}
}

// --- Snapshot-reload and sharded benches (§6, PR 6) --------------------------

// The snapshot-reload benches quantify the persistence tentpole: rebuild-ms
// is a cold index build over the first n offers, load-ms is what a later
// process pays to restore the identical index from its snapshot through
// blocking.OpenIndex (decode, validate, rebuild the title bookkeeping —
// tokenization and vector/graph construction are skipped), load-speedup =
// rebuild-ms / load-ms, and snapshot-kb is the file size. The loaded index
// must answer the full-universe query with exactly as many pairs as the
// index that was saved.
func benchSnapshotReload(b *testing.B, mk func() blocking.IndexedBlocker, n int) {
	b.Helper()
	idxs := make([]int, n)
	for i := range idxs {
		idxs[i] = i
	}
	bl := mk()
	t0 := time.Now()
	built := bl.BuildIndex(benchB.Offers, idxs)
	rebuildMS := float64(time.Since(t0).Microseconds()) / 1000
	want := built.Candidates(idxs)
	opts := blocking.IndexOptions{SnapshotDir: b.TempDir()}
	_, stats := blocking.OpenIndex(bl, benchB.Offers, idxs, opts)
	if stats.Loaded || !stats.Saved || stats.SaveErr != nil {
		b.Fatalf("snapshot save failed: %+v", stats)
	}
	info, err := os.Stat(stats.Path)
	if err != nil {
		b.Fatal(err)
	}
	var ix blocking.Index
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix, stats = blocking.OpenIndex(bl, benchB.Offers, idxs, opts)
		if !stats.Loaded {
			b.Fatalf("snapshot did not load: %+v", stats)
		}
	}
	b.StopTimer()
	loadMS := float64(b.Elapsed().Microseconds()) / 1000 / float64(b.N)
	if cands := ix.Candidates(idxs); len(cands) != len(want) {
		b.Fatalf("loaded index returned %d pairs, original %d", len(cands), len(want))
	}
	b.ReportMetric(rebuildMS, "rebuild-ms")
	b.ReportMetric(loadMS, "load-ms")
	if loadMS > 0 {
		b.ReportMetric(rebuildMS/loadMS, "load-speedup")
	}
	b.ReportMetric(float64(info.Size())/1024, "snapshot-kb")
}

func BenchmarkSnapshotReload_MinHash(b *testing.B) {
	blockingBenchSetup(b)
	for _, n := range blockingSizes() {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchSnapshotReload(b, func() blocking.IndexedBlocker {
				return blocking.NewMinHashBlocker()
			}, n)
		})
	}
}

func BenchmarkSnapshotReload_HNSW(b *testing.B) {
	blockingBenchSetup(b)
	for _, n := range blockingSizes() {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchSnapshotReload(b, func() blocking.IndexedBlocker {
				return blocking.NewHNSWBlocker(blockModel, blockKNN)
			}, n)
		})
	}
}

func BenchmarkSnapshotReload_IVF(b *testing.B) {
	blockingBenchSetup(b)
	for _, n := range blockingSizes() {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchSnapshotReload(b, func() blocking.IndexedBlocker {
				return blocking.NewIVFBlocker(blockModel, blockKNN)
			}, n)
		})
	}
}

// The sharded benches measure the hash-partitioned indexes over the full
// tiny corpus at 1, 2 and 4 shards: build-ms (concurrent per-shard
// construction), query-cold-ms (first full-universe query: fan-out plus
// merge), query-ms (steady-state repeats from the query memo), the pair
// count, and exhaustive-recall — the fraction of the exhaustive embedding
// blocker's pair set the sharded index recovers, the number the 4-shard
// acceptance floor is read from.
func benchShardedBlocking(b *testing.B, bl blocking.ShardedIndexBuilder, shards, n int) {
	b.Helper()
	idxs := make([]int, n)
	for i := range idxs {
		idxs[i] = i
	}
	t0 := time.Now()
	ix := bl.BuildShardedIndex(benchB.Offers, idxs, shards)
	buildMS := float64(time.Since(t0).Microseconds()) / 1000
	t1 := time.Now()
	ix.Candidates(idxs)
	coldMS := float64(time.Since(t1).Microseconds()) / 1000
	var cands []blocking.CandidatePair
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cands = ix.Candidates(idxs)
	}
	b.StopTimer()
	queryMS := float64(b.Elapsed().Microseconds()) / 1000 / float64(b.N)
	b.ReportMetric(buildMS, "build-ms")
	b.ReportMetric(coldMS, "query-cold-ms")
	b.ReportMetric(queryMS, "query-ms")
	b.ReportMetric(float64(len(cands)), "pairs")
	b.ReportMetric(pairRecall(cands, exhaustivePairs(n))*100, "exhaustive-recall")
}

func BenchmarkShardedBlocking_MinHash(b *testing.B) {
	blockingBenchSetup(b)
	n := len(benchB.Offers)
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			benchShardedBlocking(b, blocking.NewMinHashBlocker(), shards, n)
		})
	}
}

func BenchmarkShardedBlocking_HNSW(b *testing.B) {
	blockingBenchSetup(b)
	n := len(benchB.Offers)
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			benchShardedBlocking(b, blocking.NewHNSWBlocker(blockModel, blockKNN), shards, n)
		})
	}
}

func BenchmarkShardedBlocking_IVF(b *testing.B) {
	blockingBenchSetup(b)
	n := len(benchB.Offers)
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			benchShardedBlocking(b, blocking.NewIVFBlocker(blockModel, blockKNN), shards, n)
		})
	}
}

// --- Synthetic scale-out benches (PR 8) --------------------------------------

// The synthetic-scale benches put real points behind the scaling story:
// the corpus is grown to n offers with the deterministic synth generator
// (ScaleConfig: roughly half the generated offers form new entities, the
// web-corpus-faithful growth mode), then the sublinear blocker runs over
// the grown universe. Recall is scored against cluster ground truth with
// the linear-time EvaluateClusters — labels are correct by construction,
// so the recall number is exact, not estimated.

// synthSizes are the grown-universe sizes of the scale benches.
func synthSizes() []int { return []int{10000, 100000} }

var (
	synthMu    sync.Mutex
	synthCache = map[int]*synth.Corpus{}
)

// synthCorpusAt grows (and caches) the shared synthetic corpus at n
// offers from the tiny benchmark's offer universe.
func synthCorpusAt(tb testing.TB, n int) *synth.Corpus {
	tb.Helper()
	ensureBuild(tb)
	synthMu.Lock()
	defer synthMu.Unlock()
	if c, ok := synthCache[n]; ok {
		return c
	}
	c, err := synth.Grow(benchB.Offers, synth.ScaleConfig(n, 42))
	if err != nil {
		tb.Fatal(err)
	}
	synthCache[n] = c
	return c
}

// BenchmarkSynthGrow measures generation throughput: one full grow per
// iteration, validated once after timing stops (label consistency and
// coverage floors over every generated offer).
func BenchmarkSynthGrow(b *testing.B) {
	ensureBuild(b)
	for _, n := range synthSizes() {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var c *synth.Corpus
			for i := 0; i < b.N; i++ {
				var err error
				c, err = synth.Grow(benchB.Offers, synth.ScaleConfig(n, 42))
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if err := c.Validate(); err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(n), "ns/offer")
			b.ReportMetric(float64(c.Stats.KindCounts[synth.KindUnseen]), "unseen-offers")
			b.ReportMetric(float64(c.Stats.UnseenClusters), "unseen-clusters")
		})
	}
}

// scaleMinHashBlocker is the MinHash configuration the scale benches
// run: 16 bands of 4 rows. The default recall-tuned banding (48 bands of
// 2 rows) admits ~38% of unrelated J=0.1 pairs per corpus — harmless at
// n=2.5k, but on a 100k near-duplicate-heavy universe that is hundreds
// of millions of candidate pairs. Four-row bands push the background
// collision rate to ~0.2% while keeping most same-cluster collisions,
// which is the banding trade-off LSH theory prescribes at scale.
func scaleMinHashBlocker() *blocking.MinHashBlocker {
	return &blocking.MinHashBlocker{Config: blocking.MinHashConfig{Bands: 16, Rows: 4}, Seed: 1}
}

// BenchmarkSynthBlockingScale measures MinHash-LSH candidate generation
// over the grown universe, reporting ns/offer and exact cluster-truth
// recall at each size.
func BenchmarkSynthBlockingScale(b *testing.B) {
	for _, n := range synthSizes() {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			c := synthCorpusAt(b, n)
			idxs := make([]int, len(c.Offers))
			for i := range idxs {
				idxs[i] = i
			}
			var cands []blocking.CandidatePair
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cands = scaleMinHashBlocker().Candidates(c.Offers, idxs)
			}
			b.StopTimer()
			m := blocking.EvaluateClusters(cands, idxs, func(i int) int64 { return c.Offers[i].ClusterID })
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(n), "ns/offer")
			b.ReportMetric(float64(m.Candidates), "pairs")
			b.ReportMetric(m.PairCompleteness*100, "pair-completeness")
			b.ReportMetric(m.ReductionRatio*100, "reduction-ratio")
		})
	}
}

// --- Quantized IVF query benches (PR 9) --------------------------------------

// The quantized-query benches put the headline number behind the PR 9
// tentpole: query cost per offer through the IVF index at each precision
// tier (f32 exact scan, int8 symmetric rows, PQ ADC over residual codes),
// per-query vs batched. The acceptance figure is the n=100k batched-PQ
// µs/query against the f32 per-query baseline; every quantized row also
// reports recall of the f32 baseline's neighbour sets, so the speedup is
// never read without the quality it was bought at.

// quantBenchQueries caps the query load per measurement: enough queries
// to amortize batch dispatch the way a real split query does, small
// enough that a full precision x mode sweep at 100k stays affordable.
const quantBenchQueries = 2000

var (
	quantMu       sync.Mutex
	quantVecCache = map[int][][]float32{}
	quantIxCache  = map[string]*ivf.Index{}
	quantF32Cache = map[int][][]ivf.Result{}
)

// quantVecsAt encodes (and caches) the grown synthetic corpus at n offers
// into the shared embedding space, one vector per offer.
func quantVecsAt(tb testing.TB, n int) [][]float32 {
	blockingBenchSetup(tb)
	c := synthCorpusAt(tb, n)
	quantMu.Lock()
	defer quantMu.Unlock()
	if v, ok := quantVecCache[n]; ok {
		return v
	}
	vecs := make([][]float32, len(c.Offers))
	parallel.Run(len(vecs), 0, func(i int) error {
		vecs[i] = blockModel.Encode(c.Offers[i].Title)
		return nil
	}, nil)
	quantVecCache[n] = vecs
	return vecs
}

// quantIndexAt builds (and caches) one IVF index per (n, precision) over
// the grown corpus vectors.
func quantIndexAt(tb testing.TB, n int, p ivf.Precision) *ivf.Index {
	vecs := quantVecsAt(tb, n)
	key := fmt.Sprintf("%d/%s", n, p)
	quantMu.Lock()
	defer quantMu.Unlock()
	if ix, ok := quantIxCache[key]; ok {
		return ix
	}
	cfg := ivf.DefaultConfig()
	cfg.Precision = p
	ix := ivf.Build(vecs, cfg, xrand.New(42).Stream("quant-bench"))
	quantIxCache[key] = ix
	return ix
}

// quantF32Baseline returns (and caches) the f32 index's per-query results
// over the bench query set — the reference the quantized tiers' recall is
// measured against.
func quantF32Baseline(tb testing.TB, n int) [][]ivf.Result {
	ix := quantIndexAt(tb, n, ivf.PrecisionF32)
	vecs := quantVecsAt(tb, n)
	quantMu.Lock()
	defer quantMu.Unlock()
	if r, ok := quantF32Cache[n]; ok {
		return r
	}
	q := min(len(vecs), quantBenchQueries)
	res := ix.SearchBatch(vecs[:q], blockKNN)
	quantF32Cache[n] = res
	return res
}

// knnIDRecall is the mean per-query fraction of want's neighbour ids
// present in got's.
func knnIDRecall(got, want [][]ivf.Result) float64 {
	if len(want) == 0 {
		return 1
	}
	var sum float64
	for i := range want {
		if len(want[i]) == 0 {
			sum++
			continue
		}
		ids := make(map[int]bool, len(got[i]))
		for _, r := range got[i] {
			ids[r.ID] = true
		}
		hit := 0
		for _, r := range want[i] {
			if ids[r.ID] {
				hit++
			}
		}
		sum += float64(hit) / float64(len(want[i]))
	}
	return sum / float64(len(want))
}

// BenchmarkIVFQueryScale sweeps n x precision x dispatch mode, reporting
// us/query and recall of the f32 baseline's neighbour sets. The BENCH_9
// acceptance figure is n=100000/pq/batch us/query against
// n=100000/f32/perquery.
func BenchmarkIVFQueryScale(b *testing.B) {
	for _, n := range synthSizes() {
		for _, p := range []ivf.Precision{ivf.PrecisionF32, ivf.PrecisionInt8, ivf.PrecisionPQ} {
			for _, mode := range []string{"perquery", "batch"} {
				b.Run(fmt.Sprintf("n=%d/%s/%s", n, p, mode), func(b *testing.B) {
					ix := quantIndexAt(b, n, p)
					vecs := quantVecsAt(b, n)
					baseline := quantF32Baseline(b, n)
					qs := vecs[:min(len(vecs), quantBenchQueries)]
					res := make([][]ivf.Result, len(qs))
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						if mode == "batch" {
							res = ix.SearchBatch(qs, blockKNN)
						} else {
							for j, q := range qs {
								res[j] = ix.Search(q, blockKNN)
							}
						}
					}
					b.StopTimer()
					b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(qs))/1000, "us/query")
					b.ReportMetric(knnIDRecall(res, baseline)*100, "f32-recall")
				})
			}
		}
	}
}

// --- Matcher-in-the-loop blocking bench (§6, PR 5) ---------------------------

// BenchmarkMatcherBlocking measures the matcher-in-the-loop study: per
// iteration it runs the full MatcherBlockingReport pipeline — reusable
// index per blocker, candidate-restricted train/val/test pair sets,
// matcher training on the restricted data — for the token and MinHash
// blockers, and reports the headline numbers the study exists to link:
// MinHash's pair completeness next to the end-to-end pipeline F1 of the
// Word-Cooc matcher trained on its candidates, and the unblocked
// baseline F1 the blocked pipeline is read against.
func BenchmarkMatcherBlocking(b *testing.B) {
	setup(b)
	var table *wdcproducts.Table
	for i := 0; i < b.N; i++ {
		var err error
		table, err = wdcproducts.MatcherBlockingReport(benchB,
			[]string{"token", "minhash"}, []string{"Word-Cooc", "Magellan"}, 42, 1, 0)
		if err != nil {
			b.Fatal(err)
		}
		printTable("matchblock", table.String())
	}
	b.StopTimer()
	pct := func(row []string, col int) float64 {
		var v float64
		fmt.Sscanf(row[col], "%f", &v)
		return v
	}
	for _, row := range table.Rows {
		if row[4] != "Word-Cooc" {
			continue
		}
		switch row[0] {
		case wdcproducts.NoBlockingBaseline:
			b.ReportMetric(pct(row, 10), "baseline-F1")
		case "minhash-lsh":
			b.ReportMetric(pct(row, 2), "minhash-completeness")
			b.ReportMetric(pct(row, 10), "minhash-pipeline-F1")
		}
	}
}

// --- helpers ---------------------------------------------------------------

func cellF1(b *testing.B, system string, cc wdcproducts.CornerRatio, dev wdcproducts.DevSize, un wdcproducts.Unseen) float64 {
	b.Helper()
	cell := pairRes.PairCellFor(system, core.VariantKey{Corner: cc, Dev: dev, Unseen: un})
	if cell == nil {
		b.Fatalf("missing cell %s cc%d %s unseen%d", system, cc, dev, un)
	}
	return cell.F1
}

func bestF1(scores []float64, labels []bool) float64 {
	best := 0.0
	for step := 0; step <= 100; step++ {
		th := float64(step) / 100
		var tp, fp, fn int
		for i, s := range scores {
			pred := s >= th
			switch {
			case pred && labels[i]:
				tp++
			case pred && !labels[i]:
				fp++
			case !pred && labels[i]:
				fn++
			}
		}
		if tp == 0 {
			continue
		}
		p := float64(tp) / float64(tp+fp)
		r := float64(tp) / float64(tp+fn)
		if f := 2 * p * r / (p + r); f > best {
			best = f
		}
	}
	return best
}
