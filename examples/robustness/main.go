// Robustness: reproduce the Figure 5 scenario for a pair of systems — how
// does matching quality degrade as the test set shifts from fully seen
// products to fully unseen ones? This is the evaluation an e-commerce team
// should run before deploying a matcher that will face new products daily.
package main

import (
	"fmt"
	"log"

	"wdcproducts"
	"wdcproducts/internal/matchers"
)

func main() {
	log.SetFlags(0)

	bench, err := wdcproducts.Build(wdcproducts.TinyScale(99))
	if err != nil {
		log.Fatal(err)
	}
	runner := wdcproducts.NewRunner(bench, 99)

	// Contrast a contrastively pre-trained system (clusters seen products)
	// with a cross-encoder-style system (judges pairs directly).
	systems := []string{"R-SupCon", "Ditto"}
	fmt.Println("F1 along the unseen dimension (cc=50%, dev=medium):")
	fmt.Printf("%-10s %8s %10s %8s %14s\n", "system", "seen", "half-seen", "unseen", "seen->unseen")
	for _, name := range systems {
		m, err := wdcproducts.NewPairMatcher(name)
		if err != nil {
			log.Fatal(err)
		}
		if err := m.TrainPairs(runner.Data, bench.TrainPairs(50, wdcproducts.Medium),
			bench.ValPairs(50, wdcproducts.Medium), 1); err != nil {
			log.Fatal(err)
		}
		var f1s []float64
		for _, un := range []wdcproducts.Unseen{0, 50, 100} {
			counts := matchers.EvaluatePairs(m, runner.Data, bench.TestPairs(50, un))
			f1s = append(f1s, counts.F1()*100)
		}
		fmt.Printf("%-10s %8.2f %10.2f %8.2f %+13.2f\n",
			name, f1s[0], f1s[1], f1s[2], f1s[2]-f1s[0])
	}
	fmt.Println()
	fmt.Println("The contrastive system wins on seen products but pays for it on unseen")
	fmt.Println("ones — its representation space is organized around the products it was")
	fmt.Println("pre-trained on (the paper's central robustness finding).")
}
