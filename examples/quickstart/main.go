// Quickstart: build a small WDC Products benchmark, train one matcher, and
// evaluate it along the unseen dimension.
package main

import (
	"fmt"
	"log"

	"wdcproducts"
	"wdcproducts/internal/matchers"
)

func main() {
	log.SetFlags(0)

	// 1. Build a benchmark (tiny scale keeps this example under a minute).
	bench, err := wdcproducts.Build(wdcproducts.TinyScale(42))
	if err != nil {
		log.Fatal(err)
	}
	if err := wdcproducts.Validate(bench); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built benchmark: %d offers, %d corner-case ratios, 27 pair-wise variants\n",
		len(bench.Offers), len(bench.Ratios))

	// 2. Train the shared text encoder and one matching system on the
	// cc=50%, dev=medium variant.
	runner := wdcproducts.NewRunner(bench, 42)
	matcher, err := wdcproducts.NewPairMatcher("Ditto")
	if err != nil {
		log.Fatal(err)
	}
	if err := matcher.TrainPairs(runner.Data, bench.TrainPairs(50, wdcproducts.Medium),
		bench.ValPairs(50, wdcproducts.Medium), 1); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained %s (decision threshold %.2f)\n", matcher.Name(), matcher.Threshold())

	// 3. Evaluate on the three test sets of the unseen dimension.
	for _, unseen := range []wdcproducts.Unseen{0, 50, 100} {
		counts := matchers.EvaluatePairs(matcher, runner.Data, bench.TestPairs(50, unseen))
		fmt.Printf("  unseen %3d%%: F1=%.2f  P=%.2f  R=%.2f  (%d pairs)\n",
			unseen, counts.F1()*100, counts.Precision()*100, counts.Recall()*100, counts.Total())
	}

	// 4. Score an ad-hoc pair through the trained matcher.
	p := bench.TestPairs(50, 0)[0]
	fmt.Printf("example pair:\n  A: %s\n  B: %s\n  score=%.3f match=%v (label %v)\n",
		bench.Offer(p.A).Title, bench.Offer(p.B).Title,
		matcher.ScorePair(runner.Data, p.A, p.B),
		matcher.ScorePair(runner.Data, p.A, p.B) >= matcher.Threshold(), p.Match)
}
