// Blocking: the §6 extension. Before pair-wise matching can run at scale,
// a blocker must prune the quadratic pair space without losing true
// matches. This example compares four blockers on benchmark offers — the
// exhaustive pair (token blocking, embedding nearest-neighbour blocking)
// against their sublinear counterparts (MinHash-LSH banding over token
// sets, HNSW approximate nearest neighbours over the same embeddings) —
// reporting pair completeness (match recall), reduction ratio and wall
// time per blocker.
package main

import (
	"fmt"
	"log"
	"time"

	"wdcproducts"
	"wdcproducts/internal/blocking"
	"wdcproducts/internal/embed"
	"wdcproducts/internal/xrand"
)

func main() {
	log.SetFlags(0)

	bench, err := wdcproducts.Build(wdcproducts.TinyScale(13))
	if err != nil {
		log.Fatal(err)
	}

	// Candidate universe: the cc=50% seen test offers; ground truth is the
	// test product each offer belongs to.
	productOf := map[int]int{}
	var idxs []int
	for _, tp := range bench.Ratios[50].TestProducts[0] {
		for _, o := range tp.Offers {
			productOf[o] = tp.Slot
			idxs = append(idxs, o)
		}
	}
	truth := func(a, b int) bool { return productOf[a] == productOf[b] }

	titles := make([]string, len(bench.Offers))
	for i := range bench.Offers {
		titles[i] = bench.Offers[i].Title
	}
	model := embed.Train(titles, embed.DefaultConfig(), xrand.New(13).Stream("embed"))

	blockers := []blocking.Blocker{
		blocking.NewTokenBlocker(),
		blocking.NewEmbeddingBlocker(model, 6),
		blocking.NewMinHashBlocker(),
		blocking.NewHNSWBlocker(model, 6),
	}
	total := len(idxs) * (len(idxs) - 1) / 2
	fmt.Printf("blocking %d offers (%d possible pairs):\n\n", len(idxs), total)
	fmt.Printf("%-18s %12s %18s %16s %10s\n",
		"blocker", "candidates", "pair completeness", "reduction ratio", "ms")
	for _, bl := range blockers {
		start := time.Now()
		cands := bl.Candidates(bench.Offers, idxs)
		elapsed := time.Since(start)
		m := blocking.Evaluate(cands, idxs, truth)
		fmt.Printf("%-18s %12d %17.2f%% %15.2f%% %10.1f\n",
			bl.Name(), m.Candidates, m.PairCompleteness*100, m.ReductionRatio*100,
			float64(elapsed.Microseconds())/1000)
	}
	fmt.Println("\nA good blocker keeps pair completeness near 100% while pruning most of")
	fmt.Println("the pair space. The minhash-lsh and hnsw-knn rows approximate their")
	fmt.Println("exhaustive counterparts sublinearly: candidate generation cost grows")
	fmt.Println("with the offers and their collisions, not with the quadratic pair space")
	fmt.Println("(the paper derives the SC-Block benchmark from this corpus).")

	// The same comparison is available without touching internal packages:
	// wdcproducts.BlockingReport renders it as a table (training its own
	// encoder), and the CLIs expose it as `wdceval -blocking all` and
	// `wdcgen -blockers all`.
	fmt.Println("\n(also available as wdcproducts.BlockingReport and the -blocking /")
	fmt.Println(" -blockers flags of wdceval and wdcgen)")
}
