// Blocking: the §6 extension. Before pair-wise matching can run at scale,
// a blocker must prune the quadratic pair space without losing true
// matches. This example compares token blocking against embedding
// nearest-neighbour blocking on benchmark offers, reporting pair
// completeness (match recall) and reduction ratio.
package main

import (
	"fmt"
	"log"

	"wdcproducts"
	"wdcproducts/internal/blocking"
	"wdcproducts/internal/embed"
	"wdcproducts/internal/xrand"
)

func main() {
	log.SetFlags(0)

	bench, err := wdcproducts.Build(wdcproducts.TinyScale(13))
	if err != nil {
		log.Fatal(err)
	}

	// Candidate universe: the cc=50% seen test offers; ground truth is the
	// test product each offer belongs to.
	productOf := map[int]int{}
	var idxs []int
	for _, tp := range bench.Ratios[50].TestProducts[0] {
		for _, o := range tp.Offers {
			productOf[o] = tp.Slot
			idxs = append(idxs, o)
		}
	}
	truth := func(a, b int) bool { return productOf[a] == productOf[b] }

	titles := make([]string, len(bench.Offers))
	for i := range bench.Offers {
		titles[i] = bench.Offers[i].Title
	}
	model := embed.Train(titles, embed.DefaultConfig(), xrand.New(13).Stream("embed"))

	blockers := []blocking.Blocker{
		blocking.NewTokenBlocker(),
		blocking.NewEmbeddingBlocker(model, 6),
	}
	total := len(idxs) * (len(idxs) - 1) / 2
	fmt.Printf("blocking %d offers (%d possible pairs):\n\n", len(idxs), total)
	fmt.Printf("%-18s %12s %18s %16s\n", "blocker", "candidates", "pair completeness", "reduction ratio")
	for _, bl := range blockers {
		cands := bl.Candidates(bench.Offers, idxs)
		m := blocking.Evaluate(cands, idxs, truth)
		fmt.Printf("%-18s %12d %17.2f%% %15.2f%%\n",
			bl.Name(), m.Candidates, m.PairCompleteness*100, m.ReductionRatio*100)
	}
	fmt.Println("\nA good blocker keeps pair completeness near 100% while pruning most of")
	fmt.Println("the pair space; the corpus behind WDC Products is sized for exactly this")
	fmt.Println("kind of experiment (the paper derives the SC-Block benchmark from it).")
}
