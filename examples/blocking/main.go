// Blocking: the §6 extension. Before pair-wise matching can run at scale,
// a blocker must prune the quadratic pair space without losing true
// matches. This example compares five blockers on benchmark offers — the
// exhaustive pair (token blocking, embedding nearest-neighbour blocking)
// against their sublinear counterparts (MinHash-LSH banding over token
// sets, HNSW approximate nearest neighbours over the same embeddings, and
// IVF probing of k-means partitions of the same embeddings) — reporting
// pair completeness (match recall), reduction ratio and wall time per
// blocker. It then demonstrates the reusable-index layer: build each
// index once, query it per split, and watch repeat queries cost a
// fraction of a rebuild.
package main

import (
	"fmt"
	"log"
	"time"

	"wdcproducts"
	"wdcproducts/internal/blocking"
	"wdcproducts/internal/embed"
	"wdcproducts/internal/xrand"
)

func main() {
	log.SetFlags(0)

	bench, err := wdcproducts.Build(wdcproducts.TinyScale(13))
	if err != nil {
		log.Fatal(err)
	}

	// Candidate universe: the cc=50% seen test offers; ground truth is the
	// test product each offer belongs to.
	productOf := map[int]int{}
	var idxs []int
	for _, tp := range bench.Ratios[50].TestProducts[0] {
		for _, o := range tp.Offers {
			productOf[o] = tp.Slot
			idxs = append(idxs, o)
		}
	}
	truth := func(a, b int) bool { return productOf[a] == productOf[b] }

	titles := make([]string, len(bench.Offers))
	for i := range bench.Offers {
		titles[i] = bench.Offers[i].Title
	}
	model := embed.Train(titles, embed.DefaultConfig(), xrand.New(13).Stream("embed"))

	blockers := []blocking.Blocker{
		blocking.NewTokenBlocker(),
		blocking.NewEmbeddingBlocker(model, 6),
		blocking.NewMinHashBlocker(),
		blocking.NewHNSWBlocker(model, 6),
		blocking.NewIVFBlocker(model, 6),
	}
	total := len(idxs) * (len(idxs) - 1) / 2
	fmt.Printf("blocking %d offers (%d possible pairs):\n\n", len(idxs), total)
	fmt.Printf("%-18s %12s %18s %16s %10s\n",
		"blocker", "candidates", "pair completeness", "reduction ratio", "ms")
	for _, bl := range blockers {
		start := time.Now()
		cands := bl.Candidates(bench.Offers, idxs)
		elapsed := time.Since(start)
		m := blocking.Evaluate(cands, idxs, truth)
		fmt.Printf("%-18s %12d %17.2f%% %15.2f%% %10.1f\n",
			bl.Name(), m.Candidates, m.PairCompleteness*100, m.ReductionRatio*100,
			float64(elapsed.Microseconds())/1000)
	}
	fmt.Println("\nA good blocker keeps pair completeness near 100% while pruning most of")
	fmt.Println("the pair space. The minhash-lsh, hnsw-knn and ivf-knn rows approximate")
	fmt.Println("their exhaustive counterparts sublinearly: candidate generation cost")
	fmt.Println("grows with the offers and their collisions or probes, not with the")
	fmt.Println("quadratic pair space (the paper derives SC-Block from this corpus).")

	// The reusable-index layer: the §6 study queries the same corpus once
	// per split and seed, so each blocker's index is built once and every
	// split is a query against it. Repeat queries of a split are served
	// from the index's result memo.
	fmt.Println("\nbuild once, query per split (hnsw-knn):")
	hb := blocking.NewHNSWBlocker(model, 6)
	start := time.Now()
	ix := hb.BuildIndex(bench.Offers, idxs)
	fmt.Printf("  build over %d offers:        %6.1f ms\n",
		ix.Len(), float64(time.Since(start).Microseconds())/1000)
	half := idxs[:len(idxs)/2]
	start = time.Now()
	ix.Candidates(half)
	fmt.Printf("  first query of a split:      %6.1f ms (materializes neighbour lists)\n",
		float64(time.Since(start).Microseconds())/1000)
	start = time.Now()
	cands := ix.Candidates(half)
	fmt.Printf("  repeat query of the split:   %6.1f ms (%d candidates)\n",
		float64(time.Since(start).Microseconds())/1000, len(cands))

	// The same comparison is available without touching internal packages:
	// wdcproducts.BlockingReport renders it as a table (training its own
	// encoder), wdcproducts.BlockingScaleReport drives the build-once/
	// query-per-split study over every test split, and the CLIs expose
	// them as `wdceval -blocking all` / `-blockscale` and
	// `wdcgen -blockers all` / `-blockscale`.
	fmt.Println("\n(also available as wdcproducts.BlockingReport / BlockingScaleReport")
	fmt.Println(" and the -blocking, -blockers and -blockscale flags of wdceval and wdcgen)")
}
