// Price tracking: the multi-class use case from the paper's introduction.
// A company tracks a fixed set of products it knows; incoming offers from
// many shops must be recognized as one of those products (or dismissed by
// confidence). This is entity matching as multi-class classification
// rather than pair-wise decisions.
package main

import (
	"fmt"
	"log"
	"strconv"

	"wdcproducts"
	"wdcproducts/internal/matchers"
)

func main() {
	log.SetFlags(0)

	bench, err := wdcproducts.Build(wdcproducts.TinyScale(7))
	if err != nil {
		log.Fatal(err)
	}
	runner := wdcproducts.NewRunner(bench, 7)

	// The "catalog we track" is the 500 (here: 40) seen products of the
	// cc=50% ratio; training offers are the large development set.
	const cc = wdcproducts.CornerRatio(50)
	rd := bench.Ratios[cc]
	numClasses := bench.NumClasses(cc)

	recognizer, err := wdcproducts.NewMultiMatcher("R-SupCon")
	if err != nil {
		log.Fatal(err)
	}
	if err := recognizer.TrainMulti(runner.Data, rd.MultiTrain[wdcproducts.Large],
		rd.MultiVal, numClasses, 1); err != nil {
		log.Fatal(err)
	}
	counts := matchers.EvaluateMulti(recognizer, runner.Data, rd.MultiTest, numClasses)
	fmt.Printf("catalog recognizer over %d products: micro-F1 %.2f on %d held-out offers\n",
		numClasses, counts.MicroF1()*100, len(rd.MultiTest))

	// Price tracking: route each recognized test offer to its product and
	// aggregate the observed prices per product.
	type track struct {
		min, max float64
		n        int
	}
	tracks := map[int]*track{}
	for _, ex := range rd.MultiTest {
		class := recognizer.PredictClass(runner.Data, ex.Offer)
		offer := bench.Offer(ex.Offer)
		price, err := strconv.ParseFloat(offer.Price, 64)
		if err != nil {
			continue // offer without a usable price
		}
		tr := tracks[class]
		if tr == nil {
			tr = &track{min: price, max: price}
			tracks[class] = tr
		}
		if price < tr.min {
			tr.min = price
		}
		if price > tr.max {
			tr.max = price
		}
		tr.n++
	}
	fmt.Println("per-product price ranges observed across shops (first 8 tracked products):")
	shown := 0
	for class := 0; class < numClasses && shown < 8; class++ {
		tr := tracks[class]
		if tr == nil || tr.n < 2 {
			continue
		}
		// A representative title for the product: its first training offer.
		rep := bench.Offer(rd.Classes[class].Train[0]).Title
		fmt.Printf("  product %2d: %d offers, %.2f - %.2f | %s\n", class, tr.n, tr.min, tr.max, truncate(rep, 60))
		shown++
	}
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}
