// Benchmark explorer: generate a benchmark, save it to disk, reload it,
// and print its profiling artifacts — the workflow of a researcher
// adopting the benchmark for their own matcher.
package main

import (
	"fmt"
	"log"
	"os"

	"wdcproducts"
)

func main() {
	log.SetFlags(0)

	dir, err := os.MkdirTemp("", "wdcproducts")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Generate + persist.
	bench, corpus, err := wdcproducts.BuildWithCorpus(wdcproducts.TinyScale(5))
	if err != nil {
		log.Fatal(err)
	}
	if err := wdcproducts.Save(bench, dir); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("benchmark saved to %s\n\n", dir)

	// Reload — a downstream consumer sees exactly the same datasets.
	loaded, err := wdcproducts.Load(dir)
	if err != nil {
		log.Fatal(err)
	}
	if err := wdcproducts.Validate(loaded); err != nil {
		log.Fatal(err)
	}

	// Profile the reloaded benchmark.
	fmt.Println(wdcproducts.Table1(loaded))
	fmt.Println(wdcproducts.Figure3(loaded, 80))

	// The label-quality study runs against the generator's ground truth.
	res, err := wdcproducts.LabelQuality(bench, corpus, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("label quality: %d pairs audited, noise %.1f%%/%.1f%%, kappa %.2f\n",
		res.SampledPairs, res.NoiseEstimate[0]*100, res.NoiseEstimate[1]*100, res.Kappa)
}
